"""The five TPC-C transactions with the standard mix.

Profiles follow the TPC-C specification's weights — New-Order 45 %,
Payment 43 %, Order-Status 4 %, Delivery 4 %, Stock-Level 4 % — with the
spec's access-pattern skeleton (district/customer/stock touch patterns,
5–15 order lines, 1 % remote warehouses, last-20-orders stock scan).
Simplifications relative to the full spec are documented per transaction;
none changes which *pages* a transaction touches, which is all the I/O
benchmark observes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from . import schema
from .loader import TpccDatabase

#: Standard transaction mix (cumulative weights out of 100).
MIX = (
    ("new_order", 45),
    ("payment", 43),
    ("order_status", 4),
    ("delivery", 4),
    ("stock_level", 4),
)


@dataclass
class TxnCounts:
    new_order: int = 0
    payment: int = 0
    order_status: int = 0
    delivery: int = 0
    stock_level: int = 0

    @property
    def total(self) -> int:
        return (
            self.new_order
            + self.payment
            + self.order_status
            + self.delivery
            + self.stock_level
        )


class TpccWorkload:
    """Executes the TPC-C transaction mix against a loaded database."""

    def __init__(self, tpcc: TpccDatabase, seed: int = 7):
        self.tpcc = tpcc
        self.rng = random.Random(seed)
        self.counts = TxnCounts()
        self._clock = tpcc.scale.initial_orders_per_district + 1

    # ------------------------------------------------------------------
    # Mix driver
    # ------------------------------------------------------------------
    def run(self, n_transactions: int) -> TxnCounts:
        for _ in range(n_transactions):
            self.run_one()
        return self.counts

    def run_one(self) -> str:
        roll = self.rng.randrange(100)
        acc = 0
        for name, weight in MIX:
            acc += weight
            if roll < acc:
                getattr(self, name)()
                return name
        raise AssertionError("mix weights must sum to 100")

    # ------------------------------------------------------------------
    # Random helpers (spec-style non-uniform selection simplified to
    # uniform — the page-access footprint is equivalent at our scale)
    # ------------------------------------------------------------------
    def _warehouse(self) -> int:
        return self.rng.randrange(1, self.tpcc.scale.warehouses + 1)

    def _district(self) -> int:
        return self.rng.randrange(1, self.tpcc.scale.districts_per_warehouse + 1)

    def _customer(self) -> int:
        return self.rng.randrange(1, self.tpcc.scale.customers_per_district + 1)

    def _item(self) -> int:
        return self.rng.randrange(1, self.tpcc.scale.items + 1)

    def _tick(self) -> int:
        self._clock += 1
        return self._clock

    # ------------------------------------------------------------------
    # New-Order (45 %)
    # ------------------------------------------------------------------
    def new_order(self) -> None:
        t = self.tpcc.tables
        w, d = self._warehouse(), self._district()
        c = self._customer()
        # district: read and bump next_o_id
        dkey = schema.district_key(w, d)
        drow = schema.DISTRICT.decode(t["district"].read(dkey))
        o_id = drow["d_next_o_id"]
        t["district"].update(
            dkey,
            schema.DISTRICT.encode(w, d, drow["d_ytd"], o_id + 1),
        )
        self.tpcc.next_o_id[dkey] = o_id + 1
        # customer credit check (read only)
        t["customer"].read(schema.customer_key(w, d, c))
        ol_cnt = self.rng.randrange(5, 16)
        t["orders"].insert(
            schema.order_key(w, d, o_id),
            schema.ORDER.encode(w, d, o_id, c, -1, ol_cnt, self._tick()),
        )
        t["new_order"].insert(
            schema.new_order_key(w, d, o_id), schema.NEW_ORDER.encode(w, d, o_id)
        )
        for n in range(1, ol_cnt + 1):
            i = self._item()
            # 1 % of lines are supplied by a remote warehouse (spec 2.4.1.5)
            supply_w = w
            if self.tpcc.scale.warehouses > 1 and self.rng.randrange(100) == 0:
                while supply_w == w:
                    supply_w = self._warehouse()
            item = schema.ITEM.decode(t["item"].read(schema.item_key(i)))
            skey = schema.stock_key(supply_w, i)
            stock = schema.STOCK.decode(t["stock"].read(skey))
            qty = self.rng.randrange(1, 11)
            new_quantity = stock["s_quantity"] - qty
            if new_quantity < 10:
                new_quantity += 91
            t["stock"].update(
                skey,
                schema.STOCK.encode(
                    supply_w,
                    i,
                    new_quantity,
                    stock["s_ytd"] + qty,
                    stock["s_order_cnt"] + 1,
                    stock["s_remote_cnt"] + (1 if supply_w != w else 0),
                ),
            )
            amount = qty * item["i_price"]
            t["order_line"].insert(
                schema.order_line_key(w, d, o_id, n),
                schema.ORDER_LINE.encode(w, d, o_id, n, i, qty, amount, 0),
            )
        self.counts.new_order += 1

    # ------------------------------------------------------------------
    # Payment (43 %)
    # ------------------------------------------------------------------
    def payment(self) -> None:
        """Payment by customer id (the spec's 40 % by-id path; by-last-name
        lookup is omitted — it would add only customer-page reads, which
        the by-id path already exercises)."""
        t = self.tpcc.tables
        w, d = self._warehouse(), self._district()
        c = self._customer()
        amount = self.rng.randrange(100, 500_000)
        wrow = schema.WAREHOUSE.decode(t["warehouse"].read(w))
        t["warehouse"].update(w, schema.WAREHOUSE.encode(w, wrow["w_ytd"] + amount))
        dkey = schema.district_key(w, d)
        drow = schema.DISTRICT.decode(t["district"].read(dkey))
        t["district"].update(
            dkey,
            schema.DISTRICT.encode(w, d, drow["d_ytd"] + amount, drow["d_next_o_id"]),
        )
        ckey = schema.customer_key(w, d, c)
        crow = schema.CUSTOMER.decode(t["customer"].read(ckey))
        t["customer"].update(
            ckey,
            schema.CUSTOMER.encode(
                w,
                d,
                c,
                crow["c_balance"] - amount,
                crow["c_ytd_payment"] + amount,
                crow["c_payment_cnt"] + 1,
                crow["c_delivery_cnt"],
            ),
        )
        t["history"].insert(
            self._tick() * 1000 + schema.customer_key(w, d, c) % 1000,
            schema.HISTORY.encode(w, d, c, amount),
        )
        self.counts.payment += 1

    # ------------------------------------------------------------------
    # Order-Status (4 %)
    # ------------------------------------------------------------------
    def order_status(self) -> None:
        """Read a customer's most recent order and its lines."""
        t = self.tpcc.tables
        w, d = self._warehouse(), self._district()
        c = self._customer()
        t["customer"].read(schema.customer_key(w, d, c))
        dkey = schema.district_key(w, d)
        last_o = self.tpcc.next_o_id.get(dkey, 1) - 1
        if last_o < 1:
            self.counts.order_status += 1
            return
        # Scan back for the customer's latest order (bounded walk).
        lo = schema.order_key(w, d, max(1, last_o - 20))
        hi = schema.order_key(w, d, last_o + 1)
        latest: Optional[dict] = None
        for _key, _rid in t["orders"].index.items(lo, hi):
            row = schema.ORDER.decode(t["orders"].read(_key))
            if row["o_c_id"] == c:
                latest = row
        if latest is None:
            # fall back to the district's last order
            latest = schema.ORDER.decode(
                t["orders"].read(schema.order_key(w, d, last_o))
            )
        for n in range(1, latest["o_ol_cnt"] + 1):
            t["order_line"].read(
                schema.order_line_key(w, d, latest["o_id"], n)
            )
        self.counts.order_status += 1

    # ------------------------------------------------------------------
    # Delivery (4 %)
    # ------------------------------------------------------------------
    def delivery(self) -> None:
        """Deliver the oldest undelivered order of every district."""
        t = self.tpcc.tables
        w = self._warehouse()
        carrier = self.rng.randrange(1, 11)
        for d in range(1, self.tpcc.scale.districts_per_warehouse + 1):
            lo = schema.order_key(w, d, 0)
            hi = schema.order_key(w, d, 10_000_000 - 1)
            oldest = t["new_order"].index.min_item(lo, hi)
            if oldest is None:
                continue
            no_key, _rid = oldest
            row = schema.NEW_ORDER.decode(t["new_order"].read(no_key))
            o_id = row["no_o_id"]
            t["new_order"].delete(no_key)
            okey = schema.order_key(w, d, o_id)
            order = schema.ORDER.decode(t["orders"].read(okey))
            t["orders"].update(
                okey,
                schema.ORDER.encode(
                    w, d, o_id, order["o_c_id"], carrier,
                    order["o_ol_cnt"], order["o_entry_d"],
                ),
            )
            total = 0
            now = self._tick()
            for n in range(1, order["o_ol_cnt"] + 1):
                olkey = schema.order_line_key(w, d, o_id, n)
                ol = schema.ORDER_LINE.decode(t["order_line"].read(olkey))
                total += ol["ol_amount"]
                t["order_line"].update(
                    olkey,
                    schema.ORDER_LINE.encode(
                        w, d, o_id, n, ol["ol_i_id"], ol["ol_quantity"],
                        ol["ol_amount"], now,
                    ),
                )
            ckey = schema.customer_key(w, d, order["o_c_id"])
            crow = schema.CUSTOMER.decode(t["customer"].read(ckey))
            t["customer"].update(
                ckey,
                schema.CUSTOMER.encode(
                    w, d, order["o_c_id"],
                    crow["c_balance"] + total,
                    crow["c_ytd_payment"],
                    crow["c_payment_cnt"],
                    crow["c_delivery_cnt"] + 1,
                ),
            )
        self.counts.delivery += 1

    # ------------------------------------------------------------------
    # Stock-Level (4 %)
    # ------------------------------------------------------------------
    def stock_level(self) -> None:
        """Count recent order-line items whose stock is below a threshold."""
        t = self.tpcc.tables
        w, d = self._warehouse(), self._district()
        threshold = self.rng.randrange(10, 21)
        dkey = schema.district_key(w, d)
        next_o = self.tpcc.next_o_id.get(dkey, 1)
        seen = set()
        low = 0
        for o in range(max(1, next_o - 20), next_o):
            lo = schema.order_line_key(w, d, o, 0)
            hi = schema.order_line_key(w, d, o, 99)
            for key, _rid in t["order_line"].index.items(lo, hi):
                ol = schema.ORDER_LINE.decode(t["order_line"].read(key))
                i = ol["ol_i_id"]
                if i in seen:
                    continue
                seen.add(i)
                stock = schema.STOCK.decode(
                    t["stock"].read(schema.stock_key(w, i))
                )
                if stock["s_quantity"] < threshold:
                    low += 1
        self.counts.stock_level += 1
