"""Scaled TPC-C schema: record codecs and key packing.

The paper's Experiment 7 runs TPC-C against a ~1 GB database.  We keep
the full schema shape — all nine tables, fixed-size records padded to
spec-like sizes — but scale cardinalities down so the buffer-size sweep
(0.1 %–10 % of the database) exercises the same locality regimes on a
laptop-sized emulator (see DESIGN.md, substitutions).

Records are fixed-size ``struct`` layouts with filler padding standing in
for the textual fields; sizes approximate the TPC-C specification
(customer ≈ 655 B, stock ≈ 306 B, …) so records-per-page match reality.

Composite primary keys pack into u64 for the B+tree indexes::

    customer  (w, d, c)      -> ((w * 100 + d) * 100000) + c
    stock     (w, i)         -> w * 1000000 + i
    order     (w, d, o)      -> ((w * 100 + d) * 10**7) + o
    order_line(w, d, o, n)   -> order_key * 100 + n
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Tuple

# ----------------------------------------------------------------------
# Scale parameters
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class TpccScale:
    """Cardinalities of a scaled TPC-C database.

    The defaults are roughly 1/10 of spec scale per warehouse, keeping
    relative table sizes (stock and customer dominate) while making load
    times laptop-friendly.
    """

    warehouses: int = 1
    districts_per_warehouse: int = 10
    customers_per_district: int = 300
    items: int = 2000
    initial_orders_per_district: int = 300

    @property
    def customers(self) -> int:
        return (
            self.warehouses
            * self.districts_per_warehouse
            * self.customers_per_district
        )

    @property
    def stock_rows(self) -> int:
        return self.warehouses * self.items


#: A very small scale for unit tests.
TEST_SCALE = TpccScale(
    warehouses=1,
    districts_per_warehouse=2,
    customers_per_district=30,
    items=100,
    initial_orders_per_district=30,
)


# ----------------------------------------------------------------------
# Key packing
# ----------------------------------------------------------------------

def customer_key(w: int, d: int, c: int) -> int:
    return (w * 100 + d) * 100_000 + c


def stock_key(w: int, i: int) -> int:
    return w * 1_000_000 + i


def item_key(i: int) -> int:
    return i


def order_key(w: int, d: int, o: int) -> int:
    return (w * 100 + d) * 10_000_000 + o


def order_line_key(w: int, d: int, o: int, number: int) -> int:
    return order_key(w, d, o) * 100 + number


def district_key(w: int, d: int) -> int:
    return w * 100 + d


def new_order_key(w: int, d: int, o: int) -> int:
    return order_key(w, d, o)


# ----------------------------------------------------------------------
# Record codecs
# ----------------------------------------------------------------------
#
# Each codec packs the numeric fields the transactions actually use and
# pads to the spec-like record size.  ``encode``/``decode`` are inverses
# for the numeric fields; padding is zero.


def _padded(fmt: str, size: int) -> Tuple[struct.Struct, int]:
    codec = struct.Struct(fmt)
    if codec.size > size:
        raise ValueError(f"fields of {codec.size} bytes exceed record size {size}")
    return codec, size


class RecordCodec:
    """A fixed-size record layout with zero padding."""

    def __init__(self, name: str, fmt: str, size: int, fields: Tuple[str, ...]):
        self.name = name
        self._struct, self.size = _padded(fmt, size)
        self.fields = fields

    def encode(self, *values: int) -> bytes:
        if len(values) != len(self.fields):
            raise ValueError(
                f"{self.name} expects {len(self.fields)} fields, got {len(values)}"
            )
        packed = self._struct.pack(*values)
        return packed + b"\x00" * (self.size - self._struct.size)

    def decode(self, record: bytes) -> dict:
        if len(record) != self.size:
            raise ValueError(
                f"{self.name} record must be {self.size} bytes, got {len(record)}"
            )
        values = self._struct.unpack_from(record, 0)
        return dict(zip(self.fields, values))


#: warehouse: id, ytd (cents); ~89 B in spec.
WAREHOUSE = RecordCodec("warehouse", "<Iq", 92, ("w_id", "w_ytd"))

#: district: ids, ytd, next order id; ~95 B in spec.
DISTRICT = RecordCodec(
    "district", "<IIqI", 96, ("d_w_id", "d_id", "d_ytd", "d_next_o_id")
)

#: customer: ids, balance, ytd payment, payment/delivery counts; ~655 B.
CUSTOMER = RecordCodec(
    "customer",
    "<IIIqqII",
    655,
    (
        "c_w_id",
        "c_d_id",
        "c_id",
        "c_balance",
        "c_ytd_payment",
        "c_payment_cnt",
        "c_delivery_cnt",
    ),
)

#: item: id, price; ~82 B.
ITEM = RecordCodec("item", "<Iq", 82, ("i_id", "i_price"))

#: stock: ids, quantity, ytd, order/remote counts; ~306 B.
STOCK = RecordCodec(
    "stock",
    "<IIiqII",
    306,
    ("s_w_id", "s_i_id", "s_quantity", "s_ytd", "s_order_cnt", "s_remote_cnt"),
)

#: order: ids, customer, carrier, line count, timestamp; ~24 B numeric.
ORDER = RecordCodec(
    "order",
    "<IIIIiIq",
    32,
    ("o_w_id", "o_d_id", "o_id", "o_c_id", "o_carrier_id", "o_ol_cnt", "o_entry_d"),
)

#: new_order: the undelivered-order queue entry; 8 B in spec.
NEW_ORDER = RecordCodec("new_order", "<III", 12, ("no_w_id", "no_d_id", "no_o_id"))

#: order_line: ids, item, quantity, amount, delivery date; ~54 B.
ORDER_LINE = RecordCodec(
    "order_line",
    "<IIIIIiqq",
    54,
    (
        "ol_w_id",
        "ol_d_id",
        "ol_o_id",
        "ol_number",
        "ol_i_id",
        "ol_quantity",
        "ol_amount",
        "ol_delivery_d",
    ),
)

#: history: payment log entry; ~46 B.
HISTORY = RecordCodec(
    "history", "<IIIq", 46, ("h_c_w_id", "h_c_d_id", "h_c_id", "h_amount")
)

ALL_CODECS = (
    WAREHOUSE,
    DISTRICT,
    CUSTOMER,
    ITEM,
    STOCK,
    ORDER,
    NEW_ORDER,
    ORDER_LINE,
    HISTORY,
)
