"""Scaled TPC-C workload (S9 in DESIGN.md) for Experiment 7 / Figure 18."""

from .driver import TpccMeasurement, estimate_database_pages, run_tpcc
from .loader import Table, TpccDatabase
from .schema import TEST_SCALE, TpccScale
from .transactions import MIX, TpccWorkload, TxnCounts

__all__ = [
    "MIX",
    "TEST_SCALE",
    "Table",
    "TpccDatabase",
    "TpccMeasurement",
    "TpccScale",
    "TpccWorkload",
    "TxnCounts",
    "estimate_database_pages",
    "run_tpcc",
]
