"""Experiment-7 harness: TPC-C I/O time per transaction vs buffer size.

Builds the whole stack — chip, page-update driver, buffer pool, TPC-C
database — for one method label, loads and warms the database, then
measures simulated flash I/O per transaction for a window of the
standard mix.  The DBMS buffer size is expressed as a fraction of the
loaded database, matching the paper's 0.1 %–10 % sweep (Figure 18).

Loading happens through a large temporary buffer; the measured phase
runs with the target buffer size, so misses and dirty evictions dominate
exactly as in the paper's setup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ...flash.chip import FlashChip
from ...flash.spec import FlashSpec, spec_for_database
from ...methods import make_method
from ...storage.db import Database
from .loader import TpccDatabase
from .schema import TpccScale
from .transactions import TpccWorkload, TxnCounts


@dataclass
class TpccMeasurement:
    """Per-transaction simulated I/O of one method at one buffer size."""

    label: str
    buffer_fraction: float
    buffer_pages: int
    database_pages: int
    transactions: int
    io_us_per_txn: float
    hit_ratio: float
    erases: int
    counts: TxnCounts
    #: Buffer-pool configuration of this point (Experiment-7 extension).
    buffer_policy: str = "lru"
    writeback: str = "sync"
    #: Flash operations of the measured window.
    flash_reads: int = 0
    flash_writes: int = 0
    #: Client-visible eviction stall tail over the measured window (host µs).
    eviction_stall_p99_us: float = 0.0


def estimate_database_pages(scale: TpccScale, page_size: int = 2048) -> int:
    """Rough page count of a loaded scaled database (for chip sizing)."""
    bytes_total = (
        scale.warehouses * 92
        + scale.warehouses * scale.districts_per_warehouse * 96
        + scale.customers * 655
        + scale.items * 82
        + scale.stock_rows * 306
        + scale.warehouses
        * scale.districts_per_warehouse
        * scale.initial_orders_per_district
        * (32 + 12 + 10 * 54)
    )
    # heap slot overhead + index pages ≈ 45 %
    return int(bytes_total * 1.45 / page_size) + 64


def run_tpcc(
    label: str,
    scale: TpccScale,
    buffer_fraction: float,
    n_transactions: int = 1000,
    warmup_transactions: Optional[int] = None,
    seed: int = 7,
    base_spec: Optional[FlashSpec] = None,
    buffer_policy: str = "lru",
    writeback=None,
) -> TpccMeasurement:
    """Measure one (method, buffer size) point of Figure 18.

    ``buffer_policy`` / ``writeback`` extend the paper's sweep with the
    buffer-pool subsystem's knobs; the defaults (``"lru"``, sync
    write-back) reproduce the paper's configuration exactly.
    """
    if not 0.0 < buffer_fraction <= 1.0:
        raise ValueError("buffer_fraction must be in (0, 1]")
    est_pages = estimate_database_pages(scale)
    if base_spec is None:
        from ...flash.spec import SAMSUNG_K9L8G08U0M

        base_spec = SAMSUNG_K9L8G08U0M
    spec = spec_for_database(est_pages * 2, utilization=0.25, base=base_spec)
    chip = FlashChip(spec)
    driver = make_method(label, chip)
    # Load through a generous buffer, then shrink to the measured size.
    load_db = Database(
        driver,
        buffer_capacity=max(est_pages // 2, 256),
        buffer_policy=buffer_policy,
        writeback=writeback,
    )
    try:
        tpcc = TpccDatabase(load_db, scale, seed=seed)
        tpcc.load()
        database_pages = load_db.allocated_pages
        buffer_pages = max(4, int(database_pages * buffer_fraction))
        load_db.pool.capacity = buffer_pages  # shrink to the measured size
        workload = TpccWorkload(tpcc, seed=seed)
        if warmup_transactions is None:
            warmup_transactions = max(100, n_transactions // 4)
        workload.run(warmup_transactions)
        snap = chip.stats.snapshot()
        stats = load_db.buffer_stats
        hits0, misses0 = stats.hits, stats.misses
        stalls0 = stats.eviction_stalls.count
        counts0 = workload.counts.total
        workload.run(n_transactions)
        delta = chip.stats.delta_since(snap)
        accesses = stats.hits - hits0 + stats.misses - misses0
        hits = stats.hits - hits0
        window_stalls = stats.eviction_stalls.samples[stalls0:]
        from ...flash.stats import percentile

        return TpccMeasurement(
            label=label,
            buffer_fraction=buffer_fraction,
            buffer_pages=buffer_pages,
            database_pages=database_pages,
            transactions=workload.counts.total - counts0,
            io_us_per_txn=delta.total_time_us / n_transactions,
            hit_ratio=hits / accesses if accesses else 0.0,
            erases=delta.total_erases,
            counts=workload.counts,
            buffer_policy=buffer_policy,
            writeback="background" if load_db.pool.writeback is not None else "sync",
            flash_reads=delta.totals().reads,
            flash_writes=delta.totals().writes,
            eviction_stall_p99_us=percentile(window_stalls, 99),
        )
    finally:
        load_db.pool.close()  # stop the write-back daemon, if any
