"""TPC-C database population.

Builds the nine tables as heap files with B+tree primary-key indexes
(index pages live in the same database, so index I/O is measured like
everything else, as it would be on Odysseus).  After loading, the
database is flushed so the on-flash image is the initial state the
paper's benchmark starts from.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict

from ...storage.btree import BTree
from ...storage.db import Database
from ...storage.heap import HeapFile
from . import schema
from .schema import TpccScale


@dataclass
class Table:
    """A heap file plus its primary-key index."""

    heap: HeapFile
    index: BTree

    def insert(self, key: int, record: bytes) -> None:
        rid = self.heap.insert(record)
        self.index.insert(key, _pack_rid(rid.pid, rid.slot))

    def read(self, key: int) -> bytes:
        packed = self.index.get(key)
        if packed is None:
            raise KeyError(f"key {key} not found in {self.heap.name}")
        pid, slot = _unpack_rid(packed)
        from ...storage.heap import RID

        return self.heap.read(RID(pid, slot))

    def update(self, key: int, record: bytes) -> None:
        packed = self.index.get(key)
        if packed is None:
            raise KeyError(f"key {key} not found in {self.heap.name}")
        pid, slot = _unpack_rid(packed)
        from ...storage.heap import RID

        new_rid = self.heap.update(RID(pid, slot), record)
        if (new_rid.pid, new_rid.slot) != (pid, slot):
            self.index.insert(key, _pack_rid(new_rid.pid, new_rid.slot))

    def delete(self, key: int) -> None:
        packed = self.index.get(key)
        if packed is None:
            raise KeyError(f"key {key} not found in {self.heap.name}")
        pid, slot = _unpack_rid(packed)
        from ...storage.heap import RID

        self.heap.delete(RID(pid, slot))
        self.index.delete(key)


def _pack_rid(pid: int, slot: int) -> int:
    return (pid << 16) | slot


def _unpack_rid(packed: int) -> "tuple[int, int]":
    return packed >> 16, packed & 0xFFFF


class TpccDatabase:
    """The loaded TPC-C database: tables, indexes, and scale info."""

    TABLE_NAMES = (
        "warehouse",
        "district",
        "customer",
        "item",
        "stock",
        "orders",
        "new_order",
        "order_line",
        "history",
    )

    def __init__(self, db: Database, scale: TpccScale, seed: int = 42):
        self.db = db
        self.scale = scale
        self.rng = random.Random(seed)
        self.tables: Dict[str, Table] = {}
        for name in self.TABLE_NAMES:
            self.tables[name] = Table(
                heap=HeapFile(db, name), index=BTree(db, f"{name}_pk")
            )
        #: next order id per district (also persisted in the district row).
        self.next_o_id: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def load(self) -> None:
        s = self.scale
        for i in range(1, s.items + 1):
            price = self.rng.randrange(100, 10_000)
            self.tables["item"].insert(
                schema.item_key(i), schema.ITEM.encode(i, price)
            )
        for w in range(1, s.warehouses + 1):
            self.tables["warehouse"].insert(
                w, schema.WAREHOUSE.encode(w, 30_000_000)
            )
            for i in range(1, s.items + 1):
                self.tables["stock"].insert(
                    schema.stock_key(w, i),
                    schema.STOCK.encode(w, i, self.rng.randrange(10, 101), 0, 0, 0),
                )
            for d in range(1, s.districts_per_warehouse + 1):
                next_o = s.initial_orders_per_district + 1
                self.tables["district"].insert(
                    schema.district_key(w, d),
                    schema.DISTRICT.encode(w, d, 3_000_000, next_o),
                )
                self.next_o_id[schema.district_key(w, d)] = next_o
                for c in range(1, s.customers_per_district + 1):
                    self.tables["customer"].insert(
                        schema.customer_key(w, d, c),
                        schema.CUSTOMER.encode(w, d, c, -1000, 1000, 1, 0),
                    )
                self._load_initial_orders(w, d)
        self.db.flush()

    def _load_initial_orders(self, w: int, d: int) -> None:
        s = self.scale
        for o in range(1, s.initial_orders_per_district + 1):
            c = self.rng.randrange(1, s.customers_per_district + 1)
            ol_cnt = self.rng.randrange(5, 16)
            delivered = o <= s.initial_orders_per_district * 7 // 10
            carrier = self.rng.randrange(1, 11) if delivered else -1
            self.tables["orders"].insert(
                schema.order_key(w, d, o),
                schema.ORDER.encode(w, d, o, c, carrier, ol_cnt, o),
            )
            if not delivered:
                self.tables["new_order"].insert(
                    schema.new_order_key(w, d, o),
                    schema.NEW_ORDER.encode(w, d, o),
                )
            for n in range(1, ol_cnt + 1):
                i = self.rng.randrange(1, s.items + 1)
                amount = 0 if delivered else self.rng.randrange(1, 999_900)
                self.tables["order_line"].insert(
                    schema.order_line_key(w, d, o, n),
                    schema.ORDER_LINE.encode(w, d, o, n, i, 5, amount, o),
                )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def total_pages(self) -> int:
        return self.db.allocated_pages
