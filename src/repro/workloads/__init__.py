"""Workload generators (S8–S9): the paper's synthetic update operations,
read/update mixes, scaled TPC-C, and the named access-pattern registry
behind the scenario suite (see ``docs/workloads.md``)."""

from .patterns import (
    AccessPattern,
    Trace,
    TraceError,
    TracePattern,
    TraceRecorder,
    load_trace,
    make_pattern,
    pattern_names,
    record_pattern,
    register_pattern,
)
from .runner import (
    MethodMeasurement,
    RunnerConfig,
    aging_horizon,
    build_workload,
    measure_mix,
    measure_updates,
    warm_to_steady_state,
)
from .synthetic import (
    PlannedCycle,
    SyntheticConfig,
    SyntheticWorkload,
    VerificationError,
)

__all__ = [
    "AccessPattern",
    "MethodMeasurement",
    "PlannedCycle",
    "RunnerConfig",
    "SyntheticConfig",
    "SyntheticWorkload",
    "Trace",
    "TraceError",
    "TracePattern",
    "TraceRecorder",
    "VerificationError",
    "aging_horizon",
    "build_workload",
    "load_trace",
    "make_pattern",
    "measure_mix",
    "measure_updates",
    "pattern_names",
    "record_pattern",
    "register_pattern",
    "warm_to_steady_state",
]
