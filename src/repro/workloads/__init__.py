"""Workload generators (S8–S9): the paper's synthetic update operations,
read/update mixes, and scaled TPC-C."""

from .runner import (
    MethodMeasurement,
    RunnerConfig,
    aging_horizon,
    build_workload,
    measure_mix,
    measure_updates,
    warm_to_steady_state,
)
from .synthetic import SyntheticConfig, SyntheticWorkload, VerificationError

__all__ = [
    "MethodMeasurement",
    "RunnerConfig",
    "SyntheticConfig",
    "SyntheticWorkload",
    "VerificationError",
    "aging_horizon",
    "build_workload",
    "measure_mix",
    "measure_updates",
    "warm_to_steady_state",
]
