"""repro — a reproduction of *Page-Differential Logging* (SIGMOD 2010).

Kim, Whang & Song propose PDL, a DBMS-independent page-update method for
NAND flash that stores each logical page as a base page plus at most one
*page-differential*.  This package re-implements the complete system:

* :mod:`repro.flash` — a NAND chip emulator with the paper's Table-1
  timing model, spare areas, wear counters and crash injection;
* :mod:`repro.ftl` — the driver contract, the allocator/GC framework, and
  the baselines the paper compares against (OPU, IPU, IPL);
* :mod:`repro.core` — PDL itself: the differential codec, write buffer,
  mapping/count tables, the PDL driver, and Figure 11's crash recovery;
* :mod:`repro.sharding` — a sharded multi-chip driver: pluggable hash /
  range routing, batched group flush, aggregated stats and wear, and
  per-shard crash recovery (:func:`recover_all`);
* :mod:`repro.storage` — a mini storage engine (buffer pool, slotted
  pages, heap files, B+tree) standing in for the Odysseus ORDBMS;
* :mod:`repro.workloads` — the paper's synthetic update operations and a
  scaled TPC-C implementation;
* :mod:`repro.bench` — orchestrators regenerating every figure of the
  evaluation (Figures 12–18).

Quickstart::

    from repro import FlashChip, FlashSpec, PdlDriver

    chip = FlashChip(FlashSpec(n_blocks=64))
    pdl = PdlDriver(chip, max_differential_size=256)
    pdl.load_page(0, b"a" * chip.spec.page_data_size)
    page = bytearray(pdl.read_page(0))
    page[100:110] = b"0123456789"
    pdl.write_page(0, bytes(page))
    assert pdl.read_page(0)[100:110] == b"0123456789"
"""

from .core import (
    Differential,
    DifferentialWriteBuffer,
    PdlDriver,
    PhysicalPageMappingTable,
    RecoveryReport,
    ValidDifferentialCountTable,
    compute_runs,
    recover_driver,
)
from .flash import (
    BENCH_SPEC,
    SAMSUNG_K9L8G08U0M,
    TINY_SPEC,
    BackendError,
    CrashError,
    DeviceBackend,
    FileBackend,
    FlashChip,
    FlashSpec,
    FlashStats,
    MemoryBackend,
    PageType,
    ReadCache,
    SpareArea,
    spec_for_database,
)
from .flash.chip import CrashPoint
from .flash.errors import SimulatedPowerLoss
from .ftl import (
    ChangeRun,
    GcConfig,
    IplDriver,
    IpuDriver,
    OpuDriver,
    OutOfSpaceError,
    PageUpdateMethod,
    UnknownPageError,
    apply_runs,
    make_victim_policy,
    register_victim_policy,
    victim_policy_names,
)
from .ftl.errors import ConcurrencyError, UnallocatedPageError
from .methods import (
    PAPER_METHODS,
    PAPER_METHODS_NO_IPU,
    make_method,
    method_labels,
    parse_gc_label,
    parse_parallel_label,
    parse_sharded_label,
    sharded_labels,
)
from .sharding import (
    HashRouter,
    ParallelShardedDriver,
    RangeRouter,
    ShardExecutor,
    ShardRouter,
    ShardedDriver,
    make_router,
    recover_all,
)

__version__ = "1.0.0"

__all__ = [
    "BENCH_SPEC",
    "BackendError",
    "ChangeRun",
    "ConcurrencyError",
    "CrashError",
    "CrashPoint",
    "DeviceBackend",
    "Differential",
    "DifferentialWriteBuffer",
    "FileBackend",
    "FlashChip",
    "FlashSpec",
    "FlashStats",
    "GcConfig",
    "HashRouter",
    "MemoryBackend",
    "ReadCache",
    "IplDriver",
    "IpuDriver",
    "OpuDriver",
    "OutOfSpaceError",
    "PAPER_METHODS",
    "PAPER_METHODS_NO_IPU",
    "PageType",
    "PageUpdateMethod",
    "ParallelShardedDriver",
    "PdlDriver",
    "PhysicalPageMappingTable",
    "RangeRouter",
    "RecoveryReport",
    "SAMSUNG_K9L8G08U0M",
    "ShardExecutor",
    "ShardRouter",
    "ShardedDriver",
    "SimulatedPowerLoss",
    "SpareArea",
    "TINY_SPEC",
    "UnallocatedPageError",
    "UnknownPageError",
    "ValidDifferentialCountTable",
    "apply_runs",
    "compute_runs",
    "make_method",
    "make_router",
    "make_victim_policy",
    "method_labels",
    "parse_gc_label",
    "parse_parallel_label",
    "parse_sharded_label",
    "recover_all",
    "recover_driver",
    "register_victim_policy",
    "sharded_labels",
    "spec_for_database",
    "victim_policy_names",
    "__version__",
]
