"""One matrix cell: replay a resolved stream against one engine config.

A cell is (scenario stream × :class:`EngineConfig`).  The replay builds
the configured engine from scratch, loads the stream's initial images,
executes every operation in order, flushes, and then interrogates the
engine three ways:

1. **logical state** — every page is read back, verified against the
   stream's shadow model, and folded into a SHA-256 state hash (what the
   oracle compares across configurations);
2. **self-consistency** — ``check_driver`` over every local PDL shard,
   or the fsck fan-out for process-backed arrays;
3. **accounting** — the device-counter window of the replay, with a
   phase/per-block audit (erase totals must agree between the phase
   buckets and the per-block wear counters, checksum verification must
   never have failed, and flash traffic must exist exactly when the
   stream implies it).

Everything is deterministic given the stream; file-backed cells write
their images under ``workdir``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..core.check import check_driver
from ..core.pdl import PdlDriver
from ..flash.backend import FileBackend
from ..flash.chip import FlashChip
from ..flash.spec import FlashSpec
from ..ftl.base import apply_runs
from ..methods import make_method, parse_gc_label, parse_parallel_label, parse_sharded_label
from ..storage.bufferpool import WritebackConfig
from ..storage.db import Database
from ..workloads.patterns import READ, UPDATE
from ..workloads.runner import RunnerConfig
from .stream import ScenarioStream


class CellReplayError(AssertionError):
    """A configuration returned wrong page contents during replay."""


@dataclass(frozen=True)
class EngineConfig:
    """One engine configuration of the grid.

    ``label`` is any :func:`repro.methods.make_method` label — method,
    ``xN`` shard count, ``par``/``proc`` executor and ``gc=`` policy
    tokens included.  ``buffer_pages`` > 0 routes the replay through a
    :class:`~repro.storage.db.Database` buffer pool with the given
    eviction policy (``writeback="background"`` adds the write-back
    daemon); 0 drives the method directly, the paper's "exclude the
    buffering effect" setup.

    ``mapping_cache`` (PDL labels only) enables the demand-paged
    mapping tier on every shard with that many table entries of RAM
    (``0`` = resident but still journaled/snapshotted);
    ``mapping_interval`` overrides the snapshot cadence in journal
    records.  The differential-equivalence oracle holds these cells to
    the same logical state hash as the plain in-RAM table, which is
    exactly the tier's correctness contract.
    """

    name: str
    label: str
    backend: str = "memory"
    buffer_pages: int = 0
    buffer_policy: str = "lru"
    writeback: Optional[str] = None
    mapping_cache: Optional[int] = None
    mapping_interval: Optional[int] = None

    def __post_init__(self) -> None:
        if self.backend not in ("memory", "file"):
            raise ValueError(f"unknown backend {self.backend!r}")
        if self.buffer_pages < 0:
            raise ValueError("buffer_pages must be non-negative")
        if self.writeback not in (None, "background"):
            raise ValueError(f"unknown writeback mode {self.writeback!r}")
        if self.writeback is not None and self.buffer_pages == 0:
            raise ValueError("writeback needs a buffer pool (buffer_pages > 0)")
        if self.mapping_cache is not None and self.mapping_cache < 0:
            raise ValueError("mapping_cache must be non-negative")
        if self.mapping_interval is not None and self.mapping_cache is None:
            raise ValueError("mapping_interval requires mapping_cache")

    @property
    def buffered(self) -> bool:
        return self.buffer_pages > 0

    def describe(self) -> str:
        parts = [self.label, self.backend]
        if self.buffered:
            mode = self.writeback or "sync"
            parts.append(f"buffer={self.buffer_pages}/{self.buffer_policy}/{mode}")
        if self.mapping_cache is not None:
            parts.append(f"mapping={self.mapping_cache}")
        return " ".join(parts)


@dataclass
class CellResult:
    """What one cell's replay observed (the oracle's comparison unit)."""

    scenario: str
    config: str
    state_hash: str
    n_reads: int
    n_updates: int
    device_reads: int
    device_writes: int
    device_erases: int
    io_time_us: float
    check_ok: Optional[bool]  # None = driver has no checker (OPU/IPU/IPL)
    check_violations: List[str] = field(default_factory=list)
    audit_ok: bool = True
    audit_notes: List[str] = field(default_factory=list)


def _base_spec(page_size: int) -> FlashSpec:
    """A small chip geometry matching the stream's page size."""
    return FlashSpec(
        n_blocks=16, pages_per_block=8, page_data_size=page_size, page_spare_size=32
    )


def _build_chips(
    config: EngineConfig, stream: ScenarioStream, utilization: float, workdir: Path
) -> Union[FlashChip, List[FlashChip]]:
    runner = RunnerConfig(
        database_pages=stream.n_pages,
        utilization=utilization,
        base_spec=_base_spec(stream.page_size),
    )
    plain, _gc = parse_gc_label(config.label)
    plain, _par = parse_parallel_label(plain)
    _base, n_shards = parse_sharded_label(plain)

    def chip(spec: FlashSpec, index: int) -> FlashChip:
        if config.backend == "memory":
            return FlashChip(spec)
        path = workdir / f"{_slug(config.name)}-shard{index:02d}.flash"
        return FlashChip(spec, backend=FileBackend(path, spec))

    if n_shards is None:
        return chip(runner.spec(), 0)
    spec = runner.shard_spec(n_shards)
    return [chip(spec, i) for i in range(n_shards)]


def _slug(name: str) -> str:
    return "".join(c if c.isalnum() else "-" for c in name.lower())


def replay_cell(
    config: EngineConfig,
    stream: ScenarioStream,
    *,
    utilization: float = 0.25,
    workdir: Optional[Union[str, Path]] = None,
) -> CellResult:
    """Replay ``stream`` on a freshly built engine; see the module doc.

    Raises :class:`CellReplayError` on any mid-replay or final content
    mismatch — a wrong byte is a driver bug, not a reportable metric.
    """
    import tempfile

    if workdir is None:
        with tempfile.TemporaryDirectory(prefix="repro-scenario-") as tmp:
            return replay_cell(
                config, stream, utilization=utilization, workdir=tmp
            )
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)

    chips = _build_chips(config, stream, utilization, workdir)
    method_kwargs: Dict[str, object] = {}
    if config.mapping_cache is not None:
        from ..core.mapping import MappingConfig

        spec = chips.spec if isinstance(chips, FlashChip) else chips[0].spec
        method_kwargs["mapping"] = MappingConfig.auto(
            spec,
            cache_entries=config.mapping_cache,
            snapshot_interval=config.mapping_interval,
        )
    driver = make_method(config.label, chips, **method_kwargs)
    db: Optional[Database] = None
    try:
        driver.load_pages(stream.initial_images())
        driver.end_of_load()
        if config.buffered:
            writeback = (
                WritebackConfig() if config.writeback == "background" else None
            )
            db = Database.resume(
                driver,
                config.buffer_pages,
                stream.n_pages,
                buffer_policy=config.buffer_policy,
                writeback=writeback,
            )
        shadow: Dict[int, bytes] = dict(stream.initial_images())
        snap = driver.stats.snapshot()
        n_reads = n_updates = 0
        for index, op in enumerate(stream.ops):
            if op.kind == READ:
                data = _read(driver, db, op.pid, stream.page_size)
                if data != shadow[op.pid]:
                    raise CellReplayError(
                        f"{config.name} / {stream.scenario}: op {index} read "
                        f"wrong contents for pid {op.pid}"
                    )
                n_reads += 1
            elif op.kind == UPDATE:
                shadow[op.pid] = apply_runs(shadow[op.pid], op.runs)
                _update(driver, db, op, stream.page_size, shadow[op.pid])
                n_updates += 1
            else:  # pragma: no cover - ResolvedOp validates kinds
                raise CellReplayError(f"unknown op kind {op.kind!r}")
        if db is not None:
            db.flush()
        else:
            driver.flush()
        delta = driver.stats.delta_since(snap)

        # Logical state: verify + hash outside the measured window.
        digest = hashlib.sha256()
        for pid in range(stream.n_pages):
            data = driver.read_page(pid)
            if data != shadow[pid]:
                raise CellReplayError(
                    f"{config.name} / {stream.scenario}: final state of pid "
                    f"{pid} diverges from the shadow model"
                )
            digest.update(data)

        check_ok, violations = _consistency(driver)
        audit_ok, notes = _audit(delta, n_reads, n_updates, driver)
        return CellResult(
            scenario=stream.scenario,
            config=config.name,
            state_hash=digest.hexdigest(),
            n_reads=n_reads,
            n_updates=n_updates,
            device_reads=delta.totals().reads,
            device_writes=delta.totals().writes,
            device_erases=delta.total_erases,
            io_time_us=delta.total_time_us,
            check_ok=check_ok,
            check_violations=violations,
            audit_ok=audit_ok,
            audit_notes=notes,
        )
    finally:
        if db is not None:
            db.pool.close()
        close = getattr(driver, "close", None)
        if close is not None:
            close()
        else:
            driver.chip.close()


def _read(driver, db: Optional[Database], pid: int, page_size: int) -> bytes:
    if db is None:
        return driver.read_page(pid)
    with db.pool.pinned(pid) as page:
        return page.read(0, page_size)


def _update(driver, db: Optional[Database], op, page_size: int, image: bytes) -> None:
    if db is None:
        driver.read_page(op.pid)  # the paper's read-modify-write cycle
        driver.write_page(op.pid, image, update_logs=list(op.runs))
        return
    with db.pool.pinned(op.pid) as page:
        for run in op.runs:
            page.write(run.offset, run.data)


def _consistency(driver) -> tuple:
    """Self-consistency of the replayed engine, strongest check first.

    Local PDL shards run :func:`check_driver` directly (free: it uses
    the chip's peek interface).  Process-backed arrays have no local
    shards, so the fsck fan-out runs worker-side with its attached
    post-repair check.  Drivers with neither (OPU/IPU/IPL) return
    ``None`` — "no checker", which the oracle treats as vacuously clean.
    """
    shards = getattr(driver, "shards", None)
    local = shards if shards is not None else [driver]
    pdl_shards = [s for s in local if isinstance(s, PdlDriver)]
    if pdl_shards:
        violations: List[str] = []
        for index, shard in enumerate(pdl_shards):
            report = check_driver(shard)
            violations.extend(
                f"shard {index}: {v}" for v in report.violations
            )
        return not violations, violations
    if hasattr(driver, "fsck") and shards is None:
        # Process-backed array: shards live worker-side.
        report = driver.fsck(repair=True)
        violations = []
        if not report.clean:
            violations.append(f"fsck found {report.detected} faults")
        for index, shard_report in enumerate(report.per_shard or []):
            if shard_report.check is not None and not shard_report.check.consistent:
                violations.extend(
                    f"shard {index}: {v}" for v in shard_report.check.violations
                )
        return not violations, violations
    return None, []


def _audit(delta, n_reads: int, n_updates: int, driver) -> tuple:
    """Per-cell accounting audit: device counters explained by policy."""
    notes: List[str] = []
    totals = delta.totals()
    # Erase totals must agree between the phase buckets and the
    # per-block wear counters — two independent accounting paths.
    block_erases = sum(delta.block_erases)
    if block_erases != totals.erases:
        notes.append(
            f"erase accounting split: phases say {totals.erases}, "
            f"block counters say {block_erases}"
        )
    if n_updates > 0 and totals.writes == 0:
        notes.append(f"{n_updates} updates produced no device writes")
    if n_updates == 0 and totals.writes > 0:
        notes.append(f"read-only stream produced {totals.writes} device writes")
    if (n_reads + n_updates) > 0 and totals.reads == 0:
        notes.append("replay touched pages but read nothing from the device")
    failures = getattr(driver.stats, "checksum_failures", 0)
    if failures:
        notes.append(f"{failures} checksum verification failures")
    return not notes, notes
