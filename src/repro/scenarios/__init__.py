"""Trace-driven scenario suite (the cross-config evaluation harness).

Turns the named access patterns of :mod:`repro.workloads.patterns` into
*scenarios*: fully resolved, seeded operation streams replayed against a
grid of engine configurations.  The heart of the package is the
differential-equivalence oracle (:mod:`repro.scenarios.oracle`): every
configuration in a cell must converge to the identical logical database
state, pass its own consistency checks, and account for the same logical
traffic — the whole engine cross-checked against itself, the way
``tests/properties/test_prop_backends.py`` cross-checks backends.

Entry points:

* :func:`repro.scenarios.stream.build_stream` — pattern → replayable stream;
* :func:`repro.scenarios.cells.replay_cell` — one (scenario, config) cell;
* :func:`repro.scenarios.matrix.run_matrix` — the full grid + report table;
* ``scripts/run_scenarios.py`` — the CLI (see ``docs/workloads.md``).
"""

from .cells import CellResult, EngineConfig, replay_cell
from .matrix import (
    DEFAULT_CONFIGS,
    TINY_CONFIGS,
    MatrixResult,
    default_patterns,
    run_matrix,
    tiny_patterns,
)
from .oracle import OracleDivergence, OracleVerdict, compare_cells
from .stream import ResolvedOp, ScenarioStream, build_stream

__all__ = [
    "CellResult",
    "DEFAULT_CONFIGS",
    "EngineConfig",
    "MatrixResult",
    "OracleDivergence",
    "OracleVerdict",
    "ResolvedOp",
    "ScenarioStream",
    "TINY_CONFIGS",
    "build_stream",
    "compare_cells",
    "default_patterns",
    "replay_cell",
    "run_matrix",
    "tiny_patterns",
]
