"""The differential-equivalence oracle.

Every configuration that replays the same resolved stream must be
indistinguishable at the logical level:

* **identical state hash** — the SHA-256 over all final page images
  (content divergence means some engine lost or reordered an update);
* **identical logical traffic** — each cell executed the same number of
  reads and updates (a replay that silently dropped ops would otherwise
  go unnoticed if the dropped ops were no-ops on content);
* **clean self-checks** — ``check_driver``/fsck found every cell's
  internal tables consistent (``None`` = the method has no checker,
  vacuously clean);
* **clean accounting audit** — each cell's device counters are
  explained by its policy (erase accounting agrees across independent
  counter paths, traffic exists exactly when the stream implies it,
  checksum verification never failed).

Device-level counters (reads/writes/erases/time) legitimately differ
across configurations — that difference *is* the experiment — so the
oracle records but never compares them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from .cells import CellResult


class OracleDivergence(AssertionError):
    """Two configurations disagreed about the same scenario."""


@dataclass
class OracleVerdict:
    """Outcome of comparing one scenario's cells."""

    scenario: str
    configs: List[str]
    state_hash: str = ""
    equivalent: bool = True
    failures: List[str] = field(default_factory=list)

    def raise_if_diverged(self) -> None:
        if not self.equivalent:
            detail = "; ".join(self.failures[:6])
            more = len(self.failures) - 6
            if more > 0:
                detail += f" (+{more} more)"
            raise OracleDivergence(f"scenario {self.scenario!r}: {detail}")


def compare_cells(cells: List[CellResult]) -> OracleVerdict:
    """Cross-check all cells of one scenario; never raises itself."""
    if not cells:
        raise ValueError("compare_cells needs at least one cell")
    scenarios = {cell.scenario for cell in cells}
    if len(scenarios) != 1:
        raise ValueError(f"cells span multiple scenarios: {sorted(scenarios)}")
    verdict = OracleVerdict(
        scenario=cells[0].scenario,
        configs=[cell.config for cell in cells],
        state_hash=cells[0].state_hash,
    )
    reference = cells[0]
    for cell in cells[1:]:
        if cell.state_hash != reference.state_hash:
            verdict.failures.append(
                f"state hash of {cell.config!r} ({cell.state_hash[:12]}…) != "
                f"{reference.config!r} ({reference.state_hash[:12]}…)"
            )
        if (cell.n_reads, cell.n_updates) != (
            reference.n_reads,
            reference.n_updates,
        ):
            verdict.failures.append(
                f"logical traffic of {cell.config!r} "
                f"({cell.n_reads}r/{cell.n_updates}u) != {reference.config!r} "
                f"({reference.n_reads}r/{reference.n_updates}u)"
            )
    for cell in cells:
        if cell.check_ok is False:
            head = cell.check_violations[:2]
            verdict.failures.append(
                f"{cell.config!r} failed its consistency check: "
                + ("; ".join(head) or "unknown violation")
            )
        if not cell.audit_ok:
            verdict.failures.append(
                f"{cell.config!r} failed the stats audit: "
                + "; ".join(cell.audit_notes[:2])
            )
    verdict.equivalent = not verdict.failures
    return verdict
