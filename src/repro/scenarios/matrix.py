"""The scenario × configuration matrix harness.

Runs a set of named patterns against a grid of engine configurations,
feeds every scenario's cells through the differential-equivalence
oracle, and emits one cross-scenario report table
(``bench_results/scenarios.json`` via the bench
:class:`~repro.bench.reporting.ResultTable` machinery).

The default grid covers every axis the engine has grown: the four
page-update methods, shard counts, the serial/thread/process executors,
GC victim policies, both device backends, and buffered configurations
with each eviction policy and write-back mode.  ``TINY_CONFIGS`` /
:func:`tiny_patterns` are the reduced CI smoke grid — same axes, fewer
cells and operations (see ``scripts/run_scenarios.py --tiny``).
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..bench.reporting import ResultTable
from ..workloads.patterns import AccessPattern, TracePattern, make_pattern
from .cells import CellResult, EngineConfig, replay_cell
from .oracle import OracleVerdict, compare_cells
from .stream import build_stream

#: The paper's seed (runner default), reused for scenario streams.
DEFAULT_SEED = 20100121

#: The full configuration grid: methods × shards × executor × GC policy
#: × backend × buffer policy/write-back × mapping tier.
DEFAULT_CONFIGS: Tuple[EngineConfig, ...] = (
    EngineConfig("pdl-256", "PDL (256B)"),
    EngineConfig("pdl-2k", "PDL (2KB)"),
    EngineConfig("opu", "OPU"),
    EngineConfig("ipu", "IPU"),
    EngineConfig("ipl-512", "IPL (512B)"),
    EngineConfig("pdl-256-file", "PDL (256B)", backend="file"),
    EngineConfig("pdl-x4", "PDL (256B) x4"),
    EngineConfig("pdl-x4-cb", "PDL (256B) x4 gc=cb"),
    EngineConfig("pdl-x4-thread", "PDL (256B) x4 par"),
    EngineConfig("pdl-x2-proc", "PDL (256B) x2 proc"),
    EngineConfig("opu-x2-file", "OPU x2", backend="file"),
    EngineConfig("pdl-buf-lru", "PDL (256B)", buffer_pages=12),
    EngineConfig(
        "pdl-buf-2q-bg",
        "PDL (256B)",
        buffer_pages=12,
        buffer_policy="2q",
        writeback="background",
    ),
    # Demand-paged mapping tier: the oracle holds these to the identical
    # logical state hash as the in-RAM table (tight cache, resident
    # cache, sharded, and process-executor variants).
    EngineConfig("pdl-map-16", "PDL (256B)", mapping_cache=16, mapping_interval=48),
    EngineConfig("pdl-map-res", "PDL (256B)", mapping_cache=0),
    EngineConfig("pdl-map-x2", "PDL (256B) x2", mapping_cache=16),
    EngineConfig("pdl-map-proc", "PDL (256B) x2 proc", mapping_cache=16),
)

#: The CI smoke grid: one representative per axis, eight configs.
TINY_CONFIGS: Tuple[EngineConfig, ...] = (
    EngineConfig("pdl-256", "PDL (256B)"),
    EngineConfig("opu", "OPU"),
    EngineConfig("ipu", "IPU"),
    EngineConfig("ipl-512", "IPL (512B)"),
    EngineConfig("pdl-256-file", "PDL (256B)", backend="file"),
    EngineConfig("pdl-x4-cb", "PDL (256B) x4 gc=cb"),
    EngineConfig("pdl-x2-thread", "PDL (256B) x2 par"),
    EngineConfig("pdl-buf-2q-bg", "PDL (256B)", buffer_pages=10,
                 buffer_policy="2q", writeback="background"),
    EngineConfig("pdl-map-16", "PDL (256B)", mapping_cache=16, mapping_interval=48),
)

_DEFAULT_PATTERN_NAMES = (
    "sequential",
    "strided",
    "zipf-0.9",
    "zipf-1.2",
    "scan-hot",
    "ycsb-a",
    "ycsb-b",
    "ycsb-d",
    "ycsb-f",
)

_TINY_PATTERN_NAMES = (
    "sequential",
    "strided",
    "zipf-0.9",
    "scan-hot",
    "ycsb-a",
    "ycsb-f",
)


def default_patterns(trace: Optional[Union[str, Path]] = None) -> List[AccessPattern]:
    """The full pattern set; ``trace`` appends a trace-replay scenario."""
    patterns = [make_pattern(name) for name in _DEFAULT_PATTERN_NAMES]
    if trace is not None:
        patterns.append(TracePattern(trace))
    return patterns


def tiny_patterns(trace: Optional[Union[str, Path]] = None) -> List[AccessPattern]:
    """The reduced CI pattern set (six scenarios)."""
    patterns = [make_pattern(name) for name in _TINY_PATTERN_NAMES]
    if trace is not None:
        patterns.append(TracePattern(trace))
    return patterns


@dataclass
class MatrixResult:
    """Everything one matrix run produced."""

    table: ResultTable
    cells: Dict[Tuple[str, str], CellResult] = field(default_factory=dict)
    verdicts: List[OracleVerdict] = field(default_factory=list)

    @property
    def equivalent(self) -> bool:
        return all(v.equivalent for v in self.verdicts)

    @property
    def divergences(self) -> List[str]:
        return [f for v in self.verdicts for f in v.failures]

    def raise_if_diverged(self) -> None:
        for verdict in self.verdicts:
            verdict.raise_if_diverged()


def run_matrix(
    patterns: Sequence[AccessPattern],
    configs: Sequence[EngineConfig],
    *,
    n_pages: int = 96,
    n_ops: int = 600,
    page_size: int = 256,
    seed: int = DEFAULT_SEED,
    utilization: float = 0.25,
    workdir: Optional[Union[str, Path]] = None,
) -> MatrixResult:
    """Replay every pattern against every configuration.

    Each pattern is resolved into one seeded stream, replayed in every
    cell, and the cells are compared by the oracle.  The report table
    carries one row per cell plus a per-scenario verdict note; nothing
    raises — inspect :attr:`MatrixResult.equivalent` or call
    :meth:`MatrixResult.raise_if_diverged`.
    """
    if not patterns:
        raise ValueError("run_matrix needs at least one pattern")
    if not configs:
        raise ValueError("run_matrix needs at least one configuration")
    names = [c.name for c in configs]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate config names in grid: {names}")
    table = ResultTable(
        experiment="scenarios",
        title=(
            f"Scenario × config differential-equivalence matrix "
            f"({len(patterns)} patterns × {len(configs)} configs, "
            f"{n_ops} ops over {n_pages} pages)"
        ),
        columns=(
            "scenario",
            "config",
            "reads",
            "updates",
            "dev_reads",
            "dev_writes",
            "erases",
            "io_time_ms",
            "check",
            "state_hash",
        ),
    )
    result = MatrixResult(table=table)
    with tempfile.TemporaryDirectory(prefix="repro-scenarios-") as tmp:
        base_dir = Path(workdir) if workdir is not None else Path(tmp)
        for pattern in patterns:
            stream = build_stream(
                pattern,
                n_pages=n_pages,
                n_ops=n_ops,
                page_size=page_size,
                seed=seed,
            )
            cells: List[CellResult] = []
            for config in configs:
                cell = replay_cell(
                    config,
                    stream,
                    utilization=utilization,
                    workdir=base_dir / stream.scenario,
                )
                cells.append(cell)
                result.cells[(stream.scenario, config.name)] = cell
                table.add_row(
                    cell.scenario,
                    cell.config,
                    cell.n_reads,
                    cell.n_updates,
                    cell.device_reads,
                    cell.device_writes,
                    cell.device_erases,
                    cell.io_time_us / 1000.0,
                    _check_cell(cell),
                    cell.state_hash[:12],
                )
            verdict = compare_cells(cells)
            result.verdicts.append(verdict)
            if verdict.equivalent:
                table.note(
                    f"{stream.scenario}: {len(cells)} configs equivalent "
                    f"(state {verdict.state_hash[:12]}…)"
                )
            else:
                for failure in verdict.failures:
                    table.note(f"{stream.scenario}: DIVERGED — {failure}")
    oks = sum(1 for v in result.verdicts if v.equivalent)
    table.note(
        f"oracle: {oks}/{len(result.verdicts)} scenarios equivalent across "
        f"{len(configs)} configs"
    )
    return result


def _check_cell(cell: CellResult) -> str:
    if cell.check_ok is None:
        status = "n/a"
    else:
        status = "ok" if cell.check_ok else "FAIL"
    if not cell.audit_ok:
        status += "+audit"
    return status
