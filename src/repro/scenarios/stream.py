"""Resolved operation streams: a pattern made replayable bit-for-bit.

A pattern yields logical ``read``/``update`` ops; a *stream* resolves
every update into concrete :class:`~repro.ftl.base.ChangeRun` mutations
and fixes the initial page images, all from one seed.  Two RNG lanes
keep the resolution stable:

* the **pattern lane** (seeded from ``seed`` + pattern name) drives only
  the pattern's own draws, so adding or re-tuning mutation sizing never
  shifts which pages a scenario touches;
* the **mutation lane** (seeded from ``seed`` + pattern name + a salt)
  drives offsets and payloads.

Because mutations are content-independent byte overwrites, replaying a
stream's per-pid subsequences in order produces the same final page
images no matter how ops interleave across pids — the property both the
threaded workload clients and the differential-equivalence oracle rely
on.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..ftl.base import ChangeRun, apply_runs
from ..workloads.patterns import READ, UPDATE, AccessPattern

#: Mixed into the mutation lane's seed so the two lanes never collide.
_MUTATION_SALT = 0x5EED_D1FF


def _lane_seed(seed: int, scenario: str, salt: int = 0) -> int:
    """A stable per-(seed, scenario) RNG seed (no builtin hash())."""
    return (seed << 16) ^ zlib.crc32(scenario.encode("utf-8")) ^ salt


@dataclass(frozen=True)
class ResolvedOp:
    """One fully resolved operation: reads carry no payload, updates
    carry the exact mutations every configuration must apply."""

    kind: str
    pid: int
    runs: Tuple[ChangeRun, ...] = ()


@dataclass
class ScenarioStream:
    """A named, seeded, fully resolved operation stream."""

    scenario: str
    n_pages: int
    page_size: int
    seed: int
    ops: List[ResolvedOp] = field(default_factory=list)

    @property
    def n_reads(self) -> int:
        return sum(1 for op in self.ops if op.kind == READ)

    @property
    def n_updates(self) -> int:
        return sum(1 for op in self.ops if op.kind == UPDATE)

    def initial_images(self) -> List[Tuple[int, bytes]]:
        """The identical initial database every configuration loads."""
        rng = random.Random(_lane_seed(self.seed, self.scenario, salt=1))
        return [(pid, rng.randbytes(self.page_size)) for pid in range(self.n_pages)]

    def expected_images(self) -> Dict[int, bytes]:
        """Golden final page images: initial images + all updates applied
        in stream order (pure computation, no driver involved)."""
        images = dict(self.initial_images())
        for op in self.ops:
            if op.kind == UPDATE:
                images[op.pid] = apply_runs(images[op.pid], op.runs)
        return images


def build_stream(
    pattern: AccessPattern,
    *,
    n_pages: int,
    n_ops: int,
    page_size: int,
    seed: int,
    change_size: int = 0,
) -> ScenarioStream:
    """Resolve ``pattern`` into a replayable stream.

    ``change_size`` is the typical mutation length per update (default
    2 % of the page, the paper's ``%ChangedByOneU_Op``); every eighth
    update grows into a near-full rewrite so PDL's Case-3 base-page
    churn is exercised, not just the differential fast path.
    """
    if n_pages < 1:
        raise ValueError("n_pages must be positive")
    if n_ops < 0:
        raise ValueError("n_ops must be non-negative")
    if change_size <= 0:
        change_size = max(1, round(page_size * 0.02))
    change_size = min(change_size, page_size)
    pattern_rng = random.Random(_lane_seed(seed, pattern.name))
    mutate_rng = random.Random(_lane_seed(seed, pattern.name, salt=_MUTATION_SALT))
    big_size = max(change_size, (page_size * 15) // 16)
    ops: List[ResolvedOp] = []
    n_updates = 0
    for op in pattern.ops(n_pages, n_ops, pattern_rng):
        if op.pid >= n_pages:
            raise ValueError(
                f"pattern {pattern.name!r} emitted pid {op.pid} for a "
                f"{n_pages}-page database"
            )
        if op.kind == READ:
            ops.append(ResolvedOp(READ, op.pid))
            continue
        n_updates += 1
        size = big_size if n_updates % 8 == 0 else change_size
        offset = mutate_rng.randrange(page_size - size + 1)
        run = ChangeRun(offset, mutate_rng.randbytes(size))
        ops.append(ResolvedOp(UPDATE, op.pid, (run,)))
    return ScenarioStream(
        scenario=pattern.name,
        n_pages=n_pages,
        page_size=page_size,
        seed=seed,
        ops=ops,
    )
