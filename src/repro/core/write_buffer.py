"""The one-page differential write buffer (Section 4.2).

Differentials of many logical pages are collected here and written to a
single differential page when the buffer fills.  The buffer is exactly
one page, "and thus, the memory usage is negligible"; its capacity is the
page's data area minus the differential-page header.

At most one differential per logical page is kept: inserting a newer
differential first removes the old one (PDL_Writing Step 3), which is how
PDL honours the at-most-one-page-writing principle no matter how many
times a page was updated in memory.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .differential import Differential


class BufferFullError(RuntimeError):
    """An insert was attempted that exceeds the buffer's capacity."""


class DifferentialWriteBuffer:
    """In-memory staging area for differentials, one physical page wide."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("buffer capacity must be positive")
        self.capacity = capacity
        self._entries: Dict[int, Differential] = {}
        self._used = 0

    # ------------------------------------------------------------------
    # Space accounting
    # ------------------------------------------------------------------
    @property
    def used(self) -> int:
        """Bytes the buffered differentials would occupy when encoded."""
        return self._used

    @property
    def free_space(self) -> int:
        return self.capacity - self._used

    @property
    def is_empty(self) -> bool:
        return not self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, pid: int) -> bool:
        return pid in self._entries

    # ------------------------------------------------------------------
    # Entry management
    # ------------------------------------------------------------------
    def get(self, pid: int) -> Optional[Differential]:
        """The buffered differential for ``pid``, if any (PDL_Reading's
        buffer-first lookup)."""
        return self._entries.get(pid)

    def put(self, diff: Differential) -> None:
        """Insert a differential, replacing any older one for its pid.

        The caller is responsible for ensuring fit (PDL_Writing's Case 1/2
        distinction); violating it raises :class:`BufferFullError`.
        """
        self.remove(diff.pid)
        if diff.size > self.free_space:
            raise BufferFullError(
                f"differential of {diff.size} bytes exceeds free space "
                f"{self.free_space}"
            )
        self._entries[diff.pid] = diff
        self._used += diff.size

    def remove(self, pid: int) -> Optional[Differential]:
        """Drop and return ``pid``'s differential, if buffered."""
        diff = self._entries.pop(pid, None)
        if diff is not None:
            self._used -= diff.size
        return diff

    def drain(self) -> List[Differential]:
        """Remove and return all entries in insertion order (buffer flush)."""
        drained = list(self._entries.values())
        self._entries.clear()
        self._used = 0
        return drained

    def pids(self) -> List[int]:
        return list(self._entries.keys())
