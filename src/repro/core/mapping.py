"""Tiered (demand-paged) mapping table — RAM overlay over flash-resident pages.

The paper leaves mapping persistence as further study (Section 4.5); this
module supplies the DFTL-style answer (Dayan & Bonnet, PAPERS.md): the
authoritative ppmt lives on flash in a compact, struct-packed page format
and only a bounded working set is held in RAM.  A shard can then serve a
device far larger than its mapping RAM — the 10x target benchmarked in
``benchmarks/bench_recovery.py``.

Three cooperating pieces:

* :class:`MappingConfig` — geometry and policy knobs, frozen and
  picklable so it crosses the process-executor spawn boundary inside
  ``ShardFactory.driver_kwargs``.
* :class:`TieredMappingTable` — the ppmt facade the driver mutates.  It
  is two tiers: a *dirty overlay* dict holding every entry touched since
  the last snapshot (authoritative, bounded by the snapshot interval)
  and a *clean cache* of decoded snapshot mapping pages, demand-paged
  from the flash region through the store and evicted by a bufferpool
  eviction policy (the registry of
  :mod:`repro.storage.bufferpool.policy` — one LRU/clock implementation
  in the tree, not three).  Every mutation both updates the overlay and
  appends a journal record through the store, which is what makes crash
  restart O(dirty tail) instead of O(device)
  (:mod:`repro.ext.journal`).
* :class:`JournaledVdct` — the vdct with the same journal emission, so
  tail replay restores differential counts without re-reading any
  differential page.

The page codec here is shared by the snapshot writer and the demand
reader; its wire format is documented in ``docs/recovery.md``.
"""

from __future__ import annotations

import struct
from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Protocol, Tuple

from ..flash.spec import FlashSpec
from ..flash.stats import FlashStats
from ..ftl.errors import ConfigurationError
from .tables import MappingEntry, ValidDifferentialCountTable


def _make_eviction_policy(name: str, capacity: int):
    """Deferred import: ``repro.storage`` imports ``repro.core.pdl`` at
    module level, so pulling the bufferpool policy registry in eagerly
    would be circular.  The registry is only needed once a bounded cache
    is actually constructed."""
    from ..storage.bufferpool.policy import make_eviction_policy

    return make_eviction_policy(name, capacity)

#: Accounting phase for all mapping-tier flash traffic: demand page-in
#: reads, journal flushes, snapshot writes and restart replay.  Pushed
#: innermost, so the paper's read/write-step phase invariants (at most
#: two flash reads per PDL_Reading, etc.) are unaffected by the tier.
MAPPING_PHASE = "mapping"

# ----------------------------------------------------------------------
# Journal record kinds (fixed-size records; see repro.ext.journal)
# ----------------------------------------------------------------------
REC_SET_BASE = 1  #: a = pid, b = base addr, ts = base timestamp
REC_MOVE_BASE = 2  #: a = pid, b = new base addr (GC relocation)
REC_SET_DIFF = 3  #: a = pid, b = diff page addr, ts = differential stamp
REC_CLEAR_DIFF = 4  #: a = pid
REC_REMOVE = 5  #: a = pid
REC_VDCT_INC = 6  #: a = diff page addr
REC_VDCT_DEC = 7  #: a = diff page addr
REC_VDCT_DROP = 8  #: a = diff page addr (row removed wholesale)
REC_OPEN_BLOCK = 9  #: a = block id (journal-flushed before first program)

#: One journal record: kind, two u32 operands, one u64 timestamp.
RECORD = struct.Struct("<BIIQ")

#: Snapshot mapping-page header: magic, snapshot seq, page index, n_entries.
PAGE_HEADER = struct.Struct("<IIIH")

#: One packed mapping entry: pid, base_addr, base_ts, diff_addr+1, diff_ts+1
#: (+1 shifts keep 0 as "absent", which is also what erased 0xFF regions
#: can never decode to a valid header around).
ENTRY = struct.Struct("<IIQIQ")

#: Magic stamped into every snapshot mapping page ("PMAP").
DATA_MAGIC = 0x504D4150


class MappingFormatError(ValueError):
    """A mapping page failed structural validation during decode."""


def entries_per_page(page_data_size: int) -> int:
    """Packed entries one snapshot mapping page holds."""
    count = (page_data_size - PAGE_HEADER.size) // ENTRY.size
    if count < 1:
        raise ConfigurationError(
            f"page data area of {page_data_size} bytes cannot hold even one "
            f"packed mapping entry ({PAGE_HEADER.size + ENTRY.size} bytes)"
        )
    return count


def encode_mapping_page(
    seq: int, index: int, items: List[Tuple[int, MappingEntry]], page_data_size: int
) -> bytes:
    """Pack sorted ``(pid, entry)`` rows into one snapshot page image."""
    parts = [PAGE_HEADER.pack(DATA_MAGIC, seq, index, len(items))]
    for pid, entry in items:
        if entry.base_addr < 0:
            raise MappingFormatError(
                f"pid {pid} has a placeholder base (addr {entry.base_addr}); "
                "placeholders are scan-transient and must never be persisted"
            )
        parts.append(
            ENTRY.pack(
                pid,
                entry.base_addr,
                entry.base_ts,
                0 if entry.diff_addr is None else entry.diff_addr + 1,
                0 if entry.diff_ts is None else entry.diff_ts + 1,
            )
        )
    payload = b"".join(parts)
    if len(payload) > page_data_size:
        raise MappingFormatError(
            f"{len(items)} entries overflow a {page_data_size}-byte page"
        )
    return payload


def decode_mapping_page(
    data: bytes, expect_seq: Optional[int] = None, expect_index: Optional[int] = None
) -> Dict[int, MappingEntry]:
    """Decode a snapshot page; raises :class:`MappingFormatError` on damage."""
    if len(data) < PAGE_HEADER.size:
        raise MappingFormatError("mapping page shorter than its header")
    magic, seq, index, count = PAGE_HEADER.unpack_from(data)
    if magic != DATA_MAGIC:
        raise MappingFormatError(f"bad mapping page magic 0x{magic:08x}")
    if expect_seq is not None and seq != expect_seq:
        raise MappingFormatError(f"mapping page of snapshot {seq}, expected {expect_seq}")
    if expect_index is not None and index != expect_index:
        raise MappingFormatError(f"mapping page index {index}, expected {expect_index}")
    if PAGE_HEADER.size + count * ENTRY.size > len(data):
        raise MappingFormatError(f"mapping page claims {count} entries beyond its size")
    entries: Dict[int, MappingEntry] = {}
    offset = PAGE_HEADER.size
    for _ in range(count):
        pid, base, base_ts, diff1, diff_ts1 = ENTRY.unpack_from(data, offset)
        offset += ENTRY.size
        entries[pid] = MappingEntry(
            base_addr=base,
            base_ts=base_ts,
            diff_addr=diff1 - 1 if diff1 else None,
            diff_ts=diff_ts1 - 1 if diff_ts1 else None,
        )
    return entries


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MappingConfig:
    """Geometry and policy of the tiered mapping subsystem.

    The flash region is ``region_blocks`` blocks immediately after the
    checkpoint region: first ``journal_blocks`` for the append-only
    delta journal, then two equal snapshot halves (ping-pong — the half
    being rewritten never overwrites the one being relied on).

    ``cache_entries`` is the RAM budget of the clean translation cache
    in *entries* (converted to whole mapping pages); ``0`` keeps every
    demand-paged mapping page resident — still journaled and
    snapshotted, but with unbounded mapping RAM.  ``snapshot_interval``
    is the journal-record count that arms the next snapshot (taken at
    the next driver safe point).
    """

    region_blocks: int
    journal_blocks: int = 1
    cache_entries: int = 0
    cache_policy: str = "lru"
    snapshot_interval: int = 1024

    def __post_init__(self) -> None:
        if self.journal_blocks < 1:
            raise ConfigurationError("journal_blocks must be at least 1")
        halves = self.region_blocks - self.journal_blocks
        if halves < 2 or halves % 2 != 0:
            raise ConfigurationError(
                "region_blocks must leave an even number (>= 2) of snapshot "
                f"blocks after {self.journal_blocks} journal blocks; got "
                f"{self.region_blocks}"
            )
        if self.cache_entries < 0:
            raise ConfigurationError("cache_entries must be non-negative")
        if self.snapshot_interval < 1:
            raise ConfigurationError("snapshot_interval must be positive")

    @property
    def half_blocks(self) -> int:
        return (self.region_blocks - self.journal_blocks) // 2

    @classmethod
    def auto(
        cls,
        spec: FlashSpec,
        cache_entries: int = 0,
        snapshot_interval: Optional[int] = None,
        cache_policy: str = "lru",
    ) -> "MappingConfig":
        """Size the region for the worst case of ``spec``'s geometry.

        A snapshot half must hold one packed entry per live logical page
        (bounded by the device's page count) plus the meta sections
        (directory, validity bitmap, vdct rows, active blocks) and the
        seal page.  The journal is sized so roughly one snapshot
        interval of half-full record pages fits before overflow.
        """
        per_page = entries_per_page(spec.page_data_size)
        data_pages = -(-spec.n_pages // per_page)  # ceil
        meta_bytes = (
            4 * data_pages  # directory: first pid per data page
            + -(-spec.n_pages // 8)  # validity bitmap
            + 8 * (spec.n_pages // 8)  # vdct allowance (addr, count pairs)
            + 64  # active-block list and counts
        )
        meta_pages = -(-meta_bytes // max(1, spec.page_data_size - PAGE_HEADER.size))
        half_blocks = -(-(data_pages + meta_pages + 1) // spec.pages_per_block)
        records_per_page = (spec.page_data_size - 18) // RECORD.size
        if snapshot_interval is None:
            snapshot_interval = max(64, spec.n_pages // 4)
        # Half-full journal pages (group commit rarely fills a page), one
        # reserved overflow page, rounded up to whole blocks.
        journal_pages = 1 + -(-2 * snapshot_interval // max(1, records_per_page))
        journal_blocks = max(1, -(-journal_pages // spec.pages_per_block))
        return cls(
            region_blocks=journal_blocks + 2 * half_blocks,
            journal_blocks=journal_blocks,
            cache_entries=cache_entries,
            cache_policy=cache_policy,
            snapshot_interval=snapshot_interval,
        )


# ----------------------------------------------------------------------
# Store interface (implemented by repro.ext.journal.MappingStore)
# ----------------------------------------------------------------------
class MappingBackend(Protocol):
    """What the tiered table needs from the journal/snapshot store."""

    stats: FlashStats

    @property
    def entries_per_page(self) -> int: ...

    @property
    def data_page_count(self) -> int: ...

    def page_index_of(self, pid: int) -> Optional[int]:
        """Snapshot data page whose pid range covers ``pid`` (None: none)."""

    def load_data_page(self, index: int) -> Dict[int, MappingEntry]:
        """Demand-read and decode one snapshot mapping page (one Tread)."""

    def record(self, kind: int, a: int, b: int = 0, ts: int = 0) -> None:
        """Append one delta record to the journal (buffered, group-committed)."""


# ----------------------------------------------------------------------
# The tiered table
# ----------------------------------------------------------------------
class TieredMappingTable:
    """ppmt facade: dirty overlay + bounded clean cache + flash snapshot.

    Drop-in for :class:`~repro.core.tables.PhysicalPageMappingTable` —
    every mutator additionally appends a journal record through the
    store, and lookups that miss both RAM tiers demand-page the covering
    snapshot page in.  Entries returned by :meth:`get` / :meth:`require`
    are *copies* when they come from the clean tier; callers must mutate
    through the table's methods (the in-place idiom would silently skip
    the journal), which every driver path now does.
    """

    def __init__(
        self,
        store: MappingBackend,
        cache_entries: int = 0,
        cache_policy: str = "lru",
    ) -> None:
        self._store = store
        #: pid -> entry dirtied since the last snapshot; ``None`` is a
        #: tombstone shadowing a snapshot-resident row.
        self._overlay: Dict[int, Optional[MappingEntry]] = {}
        #: snapshot page index -> decoded page (clean tier).
        self._cache: Dict[int, Dict[int, MappingEntry]] = {}
        self._cache_entries = cache_entries
        self._policy_name = cache_policy
        if cache_entries > 0:
            self._capacity_pages: Optional[int] = max(
                1, cache_entries // store.entries_per_page
            )
            self._policy = _make_eviction_policy(cache_policy, self._capacity_pages)
        else:
            self._capacity_pages = None
            self._policy = None
        self._count = 0
        self._max_pid = -1

    # -- introspection --------------------------------------------------
    @property
    def max_pid(self) -> int:
        """Largest pid ever mapped (monotonic; allocation-horizon input)."""
        return self._max_pid

    @property
    def cached_pages(self) -> int:
        """Clean-tier mapping pages currently resident (occupancy probe)."""
        return len(self._cache)

    @property
    def cache_capacity_pages(self) -> Optional[int]:
        return self._capacity_pages

    @property
    def overlay_size(self) -> int:
        """Dirty entries since the last snapshot (tombstones included)."""
        return len(self._overlay)

    # -- lookups --------------------------------------------------------
    def get(self, pid: int) -> Optional[MappingEntry]:
        entry = self._overlay.get(pid)
        if entry is not None:
            self._store.stats.record_mapping_hit()
            return entry
        if pid in self._overlay:  # tombstone
            self._store.stats.record_mapping_hit()
            return None
        return self._clean_entry(pid)

    def require(self, pid: int) -> MappingEntry:
        entry = self.get(pid)
        if entry is None:
            raise KeyError(f"logical page {pid} has no mapping entry")
        return entry

    def __contains__(self, pid: int) -> bool:
        return self.get(pid) is not None

    def __len__(self) -> int:
        return self._count

    def _clean_entry(self, pid: int) -> Optional[MappingEntry]:
        index = self._store.page_index_of(pid)
        if index is None:
            self._store.stats.record_mapping_hit()
            return None
        page = self._cache.get(index)
        if page is None:
            page = self._store.load_data_page(index)  # records the miss
            self._admit(index, page)
        else:
            self._store.stats.record_mapping_hit()
            if self._policy is not None:
                self._policy.touch(index)
        entry = page.get(pid)
        return entry.copy() if entry is not None else None

    def _admit(self, index: int, page: Dict[int, MappingEntry]) -> None:
        self._cache[index] = page
        if self._policy is None:
            return
        self._policy.admit(index)
        while len(self._cache) > (self._capacity_pages or 0):
            victim = self._policy.select_victim(lambda _i: True)
            if victim is None:  # pragma: no cover - capacity >= 1 guards this
                break
            self._policy.remove(victim)
            self._cache.pop(victim, None)

    def _live(self, pid: int) -> MappingEntry:
        """The overlay's mutable entry for ``pid`` (copy-on-write)."""
        entry = self._overlay.get(pid)
        if entry is not None:
            return entry
        if pid in self._overlay:
            raise KeyError(f"logical page {pid} has no mapping entry")
        clean = self._clean_entry(pid)
        if clean is None:
            raise KeyError(f"logical page {pid} has no mapping entry")
        self._overlay[pid] = clean  # already a private copy
        return clean

    # -- mutators (journal-emitting) ------------------------------------
    def set_base(self, pid: int, addr: int, timestamp: int) -> None:
        existed = self.get(pid) is not None
        self._overlay[pid] = MappingEntry(base_addr=addr, base_ts=timestamp)
        if not existed:
            self._count += 1
            if pid > self._max_pid:
                self._max_pid = pid
        self._store.record(REC_SET_BASE, pid, addr, timestamp)

    def move_base(self, pid: int, addr: int) -> None:
        self._live(pid).base_addr = addr
        self._store.record(REC_MOVE_BASE, pid, addr)

    def set_diff(
        self, pid: int, addr: Optional[int], timestamp: Optional[int] = None
    ) -> None:
        entry = self._live(pid)
        entry.diff_addr = addr
        entry.diff_ts = timestamp if addr is not None else None
        if addr is None:
            self._store.record(REC_CLEAR_DIFF, pid)
        else:
            self._store.record(REC_SET_DIFF, pid, addr, timestamp or 0)

    def remove(self, pid: int) -> Optional[MappingEntry]:
        entry = self.get(pid)
        if entry is None:
            return None
        self._overlay[pid] = None
        self._count -= 1
        self._store.record(REC_REMOVE, pid)
        return entry

    # -- iteration (full table walk: fsck, checkpoint, verification) ----
    def items(self) -> Iterator[Tuple[int, MappingEntry]]:
        """Every live row.  Streams snapshot pages without admitting them
        to the clean cache (a full walk would otherwise evict the whole
        working set), then the overlay; demand reads are charged to the
        ``mapping`` phase like any other page-in."""
        for index in range(self._store.data_page_count):
            page = self._cache.get(index)
            if page is None:
                page = self._store.load_data_page(index)  # records the miss
            for pid, entry in page.items():
                if pid not in self._overlay:
                    yield pid, entry.copy()
        for pid, entry in self._overlay.items():
            if entry is not None:
                yield pid, entry

    def pids(self) -> Iterator[int]:
        return (pid for pid, _entry in self.items())

    # -- snapshot cooperation (called by the store) ---------------------
    def overlay_items(self) -> List[Tuple[int, Optional[MappingEntry]]]:
        """Dirty rows, pid-sorted, tombstones included (snapshot merge input)."""
        return sorted(self._overlay.items())

    def on_snapshot(self) -> None:
        """The store sealed a new snapshot: the overlay is now flash-resident
        and the clean cache's decoded pages belong to the superseded one."""
        self._overlay.clear()
        self._cache.clear()
        if self._capacity_pages is not None:
            self._policy = _make_eviction_policy(
                self._policy_name, self._capacity_pages
            )

    def seed_counts(self, count: int, max_pid: int) -> None:
        """Adopt persisted table statistics at restart."""
        self._count = count
        self._max_pid = max_pid


class JournaledVdct(ValidDifferentialCountTable):
    """vdct that mirrors every count change into the mapping journal.

    Tail replay applies the records back through the plain superclass
    methods (journaling suppressed), so the restored counts are exactly
    the live ones without reading any differential page's data area.
    """

    def __init__(self, store: MappingBackend) -> None:
        super().__init__()
        self._store = store

    def increment(self, addr: int) -> None:
        super().increment(addr)
        self._store.record(REC_VDCT_INC, addr)

    def decrement(self, addr: int) -> bool:
        reached_zero = super().decrement(addr)
        self._store.record(REC_VDCT_DEC, addr)
        return reached_zero

    def remove(self, addr: int) -> int:
        count = super().remove(addr)
        if count:
            self._store.record(REC_VDCT_DROP, addr)
        return count


def directory_index(directory: List[int], pid: int) -> Optional[int]:
    """Snapshot data page covering ``pid`` given first-pid-per-page keys."""
    if not directory or pid < directory[0]:
        return None
    return bisect_right(directory, pid) - 1
