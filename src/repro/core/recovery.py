"""PDL crash recovery — PDL_RecoveringfromCrash (Section 4.5, Figure 11).

After a failure the physical page mapping table and the valid differential
count table are volatile losses.  One scan over the flash reconstructs
them: every page's spare area is read; differential pages additionally
have their data areas read and parsed.  Creation time stamps disambiguate
co-existing copies (a crash between "program new copy" and "obsolete old
copy" leaves both):

* a base page is adopted when strictly newer than the currently adopted
  base for its pid; otherwise it is marked obsolete (ties arise only from
  GC relocation, where both copies are identical, so either is fine);
* a differential is adopted when strictly newer than both the adopted
  base and the currently adopted differential for its pid;
* differential pages ending the scan with zero adopted entries, and
  superseded base pages, are marked obsolete — the scan's only writes,
  which is why recovery is idempotent under repeated crashes.

The tables recover exactly the state last made durable (buffer flush or
write-through); differentials still in the in-memory write buffer at
crash time are lost, the paper's file-buffer analogy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set

from ..flash.chip import FlashChip
from ..flash.errors import ProgramError
from ..flash.spare import PageType, data_checksum
from ..ftl.gc import VictimPolicy
from .differential import DEFAULT_COALESCE_GAP, DifferentialError, decode_differential_page
from .pdl import PdlDriver
from .tables import PhysicalPageMappingTable, ValidDifferentialCountTable

#: Accounting phase for the recovery scan.
RECOVERY_PHASE = "recovery"


#: Pages per batched spare read during the scan.  On the file backend the
#: spare region is contiguous, so each chunk is a single sequential read.
SCAN_CHUNK_PAGES = 4096


def _quarantine_corrupt(chip: FlashChip, addr: int, report: "RecoveryReport") -> None:
    """Obsolete a corrupt page, tolerating damage to the spare area itself.

    A page being quarantined is by definition damaged, so its spare may
    be torn or have its program budget exhausted; a failed obsolete mark
    must not abort the whole scan — the page is already outside every
    rebuilt table, which is what matters.  Only an actual write counts
    toward ``stale_pages_obsoleted``.
    """
    try:
        chip.mark_obsolete(addr)
    except ProgramError:
        return
    report.stale_pages_obsoleted += 1


@dataclass
class RecoveryReport:
    """What the scan found — useful for tests and operational logging."""

    pages_scanned: int = 0
    base_pages_adopted: int = 0
    differentials_adopted: int = 0
    stale_pages_obsoleted: int = 0
    corrupt_differential_pages: int = 0
    #: Base pages whose spare lost its pid (e.g. a torn spare program) —
    #: unusable without knowing which logical page they hold.
    corrupt_base_pages: int = 0
    #: Pages whose spare type byte decoded to no known page type.
    corrupt_spare_pages: int = 0
    orphan_pids: List[int] = field(default_factory=list)
    max_timestamp: int = 0
    #: Batched differential-data reads: pages prefetched through
    #: ``read_pages`` and the number of chip calls that took.  The same
    #: page count the old one-read-per-page loop charged, in
    #: ``diff_read_batches`` calls instead of ``diff_pages_read``.
    diff_pages_read: int = 0
    diff_read_batches: int = 0
    #: Mapping-tier restart fields (repro.ext.journal.restart_driver).
    #: ``fast_path`` means snapshot-load + journal-tail replay satisfied
    #: the restart; ``fallback`` means the journal was unusable and the
    #: full Figure-11 scan above ran instead; ``repaired`` means a fresh
    #: snapshot was written at the end of the restart.
    fast_path: bool = False
    snapshot_seq: Optional[int] = None
    journal_records: int = 0
    journal_pages: int = 0
    tail_pages_scanned: int = 0
    repaired: bool = False
    fallback: bool = False


def recover_tables(
    chip: FlashChip,
    ppmt: PhysicalPageMappingTable,
    vdct: ValidDifferentialCountTable,
    driver: "Optional[PdlDriver]" = None,
) -> RecoveryReport:
    """Rebuild ppmt and vdct by scanning flash (Figure 11).

    The caller provides empty tables; the report carries scan statistics
    and the largest timestamp seen.  ``report.max_timestamp`` covers
    *every* programmed spare area and differential entry — including
    stale copies and differential-page headers, whose flush-time stamps
    are strictly newer than the entries inside them — so resuming from
    it restores the invariant that every post-recovery program gets a
    stamp strictly larger than anything already on flash.  When
    ``driver`` is supplied, its timestamp counter is resumed here, so
    callers cannot forget to do it.
    """
    report = RecoveryReport()

    def drop_diff(pid: int) -> None:
        """decreaseValidDifferentialCount for pid's adopted differential."""
        entry = ppmt.get(pid)
        if entry is None or entry.diff_addr is None:
            return
        addr = entry.diff_addr
        if vdct.decrement(addr):
            chip.mark_obsolete(addr)
            report.stale_pages_obsoleted += 1
        ppmt.set_diff(pid, None)

    with chip.stats.phase(RECOVERY_PHASE):
        for start in range(0, chip.spec.n_pages, SCAN_CHUNK_PAGES):
            addrs = range(start, min(start + SCAN_CHUNK_PAGES, chip.spec.n_pages))
            survivors: List[tuple] = []  # (addr, spare) surviving triage
            diff_addrs: List[int] = []
            for addr, spare in zip(addrs, chip.read_spares(addrs)):
                report.pages_scanned += 1
                if spare.is_erased:
                    continue
                # Even stale/obsolete stamps must bound the resumed
                # counter: a reused timestamp would break recovery's
                # strictly-newer adoption rule on the next crash.
                report.max_timestamp = max(report.max_timestamp, spare.timestamp or 0)
                if spare.obsolete:
                    continue
                if spare.is_corrupt:
                    # A damaged type byte: the page holds *something* that
                    # was programmed, so it must not be treated as erased
                    # (the old behaviour re-allocated over it).  Quarantine
                    # by obsoleting — its block stays sealed until GC.
                    report.corrupt_spare_pages += 1
                    _quarantine_corrupt(chip, addr, report)
                    continue
                if spare.type is PageType.BASE:
                    survivors.append((addr, spare))
                elif spare.type is PageType.DIFFERENTIAL:
                    survivors.append((addr, spare))
                    diff_addrs.append(addr)
                # Pages of other types (checkpoint/mapping regions) are
                # left untouched: recovery never destroys data it does not
                # own.
            images = _prefetch_diff_pages(chip, diff_addrs, report)
            for addr, spare in survivors:
                if spare.type is PageType.BASE:
                    _scan_base_page(chip, addr, spare.pid, spare.timestamp or 0,
                                    ppmt, drop_diff, report)
                else:
                    _scan_diff_page(chip, addr, images[addr], ppmt, vdct,
                                    drop_diff, report)

        # Entries whose base page never appeared cannot be served; their
        # differentials alone cannot recreate a page.  This indicates an
        # interrupted initial load; report and drop them.
        orphans = [pid for pid, entry in ppmt.items() if entry.base_addr < 0]
        for pid in orphans:
            drop_diff(pid)
            report.orphan_pids.append(pid)
        for pid in orphans:
            ppmt.remove(pid)

    if driver is not None:
        driver.resume_ts(report.max_timestamp)
    return report


def _prefetch_diff_pages(
    chip: FlashChip, diff_addrs: List[int], report: RecoveryReport
) -> Dict[int, Optional[bytes]]:
    """Batch-read the chunk's differential-page data areas.

    One ``read_pages`` call replaces one ``read_page`` per differential
    page; the per-page Tread charge is identical by construction.
    Verification is done here by hand — ``verify=True`` would abort the
    whole batch at the first corrupt page, while the scan must keep
    going and quarantine only that page — with the same checksum-stat
    accounting a verified read performs.  Corrupt pages map to ``None``.
    """
    images: Dict[int, Optional[bytes]] = {}
    if not diff_addrs:
        return images
    report.diff_read_batches += 1
    report.diff_pages_read += len(diff_addrs)
    for addr, (data, spare) in zip(
        diff_addrs, chip.read_pages(diff_addrs, verify=False)
    ):
        if spare.checksum is not None:
            chip.stats.record_checksum_check()
            if data_checksum(data) != spare.checksum:
                chip.stats.record_checksum_failure()
                images[addr] = None
                continue
        images[addr] = data
    return images


def _scan_base_page(
    chip: FlashChip,
    addr: int,
    pid: Optional[int],
    ts: int,
    ppmt: PhysicalPageMappingTable,
    drop_diff: Callable[[int], None],
    report: RecoveryReport,
) -> None:
    """Case 1 of Figure 11: the scanned page is a base page."""
    if pid is None:
        # A base page without a pid (torn spare program) cannot be mapped
        # to any logical page; count it under its own bucket and mark it
        # obsolete so later scans and the allocator never trust it.
        report.corrupt_base_pages += 1
        _quarantine_corrupt(chip, addr, report)
        return
    entry = ppmt.get(pid)
    if entry is None:
        ppmt.set_base(pid, addr, ts)
        report.base_pages_adopted += 1
        report.max_timestamp = max(report.max_timestamp, ts)
        return
    current_diff = entry.diff_addr
    current_diff_ts = entry.diff_ts
    if entry.base_addr >= 0 and ts <= entry.base_ts:
        # The adopted base is at least as recent: r is a stale copy.
        chip.mark_obsolete(addr)
        report.stale_pages_obsoleted += 1
        return
    if entry.base_addr >= 0:
        # r is a more recent base page; the old one is obsolete.
        chip.mark_obsolete(entry.base_addr)
        report.stale_pages_obsoleted += 1
    ppmt.set_base(pid, addr, ts)
    if current_diff is not None:
        # set_base clears the differential; keep it for the check below.
        ppmt.set_diff(pid, current_diff, current_diff_ts)
    report.base_pages_adopted += 1
    report.max_timestamp = max(report.max_timestamp, ts)
    if current_diff is not None and ts > (
        current_diff_ts if current_diff_ts is not None else -1
    ):
        # The new base supersedes the adopted differential.
        drop_diff(pid)


def _scan_diff_page(
    chip: FlashChip,
    addr: int,
    data: Optional[bytes],
    ppmt: PhysicalPageMappingTable,
    vdct: ValidDifferentialCountTable,
    drop_diff: Callable[[int], None],
    report: RecoveryReport,
) -> None:
    """Case 2 of Figure 11: the scanned page is a differential page.

    ``data`` is the prefetched data area (None when its checksum failed
    in the batch read).
    """
    try:
        if data is None:
            raise DifferentialError("differential page data failed its checksum")
        diffs = decode_differential_page(data)
    except DifferentialError:
        report.corrupt_differential_pages += 1
        _quarantine_corrupt(chip, addr, report)
        return
    adopted = 0
    for diff in diffs:
        entry = ppmt.get(diff.pid)
        base_ts = entry.base_ts if entry is not None and entry.base_addr >= 0 else -1
        if diff.timestamp <= base_ts:
            continue  # older than the adopted base: stale
        current = entry.diff_ts if entry is not None and entry.diff_ts is not None else -1
        if diff.timestamp <= current:
            continue  # an at-least-as-recent differential was adopted
        if entry is None:
            # The differential precedes its base in scan order; register a
            # placeholder row (base_addr < 0 marks "not yet seen").
            ppmt.set_base(diff.pid, -1, -1)
        drop_diff(diff.pid)
        ppmt.set_diff(diff.pid, addr, diff.timestamp)
        vdct.increment(addr)
        adopted += 1
        report.max_timestamp = max(report.max_timestamp, diff.timestamp)
    report.differentials_adopted += adopted
    if vdct.count(addr) == 0:
        # No valid differential remains in r.
        chip.mark_obsolete(addr)
        report.stale_pages_obsoleted += 1


def recover_driver(
    chip: FlashChip,
    max_differential_size: int = 256,
    coalesce_gap: int = DEFAULT_COALESCE_GAP,
    reserve_blocks: int = 2,
    victim_policy: "Optional[VictimPolicy]" = None,
    **driver_kwargs: Any,
) -> "tuple[PdlDriver, RecoveryReport]":
    """Build a fully operational :class:`PdlDriver` from post-crash flash.

    Reconstructs the tables (Figure 11), the allocator's validity bitmap
    and free-block pool, and resumes the timestamp counter.  Fully-erased
    blocks return to the free pool; partially-written blocks are sealed
    until GC reclaims them.  GC tuning (``victim_policy`` or a
    ``gc_config`` keyword) is runtime state, not flash state — callers
    re-supply it on every restart.

    When a ``mapping`` configuration is passed (the tiered, journaled
    mapping table), restart is delegated to
    :func:`repro.ext.journal.restart_driver`: snapshot load plus journal
    tail replay, with the scan below as its verifier/fallback.  The
    return contract is identical, so recovery-driven callers
    (``ShardFactory``, ``Database.recover_all``) need no changes.
    """
    if driver_kwargs.get("mapping") is not None:
        from ..ext.journal import restart_driver  # ext layers above core

        return restart_driver(
            chip,
            max_differential_size=max_differential_size,
            coalesce_gap=coalesce_gap,
            reserve_blocks=reserve_blocks,
            victim_policy=victim_policy,
            **driver_kwargs,
        )
    driver = PdlDriver.__new__(PdlDriver)
    PdlDriver.__init__(
        driver,
        chip,
        max_differential_size=max_differential_size,
        coalesce_gap=coalesce_gap,
        reserve_blocks=reserve_blocks,
        victim_policy=victim_policy,
        **driver_kwargs,
    )
    # The fresh __init__ assumed an empty chip; rebuild its state.
    driver.ppmt = PhysicalPageMappingTable()
    driver.vdct = ValidDifferentialCountTable()
    # recover_tables resumes the timestamp counter itself (from the
    # global maximum over all programmed stamps, stale copies included).
    report = recover_tables(chip, driver.ppmt, driver.vdct, driver=driver)
    valid: Set[int] = set()
    for _pid, entry in driver.ppmt.items():
        valid.add(entry.base_addr)
    for diff_page in driver.vdct.pages():
        valid.add(diff_page)
    driver.blocks.rebuild(valid)
    return driver, report
