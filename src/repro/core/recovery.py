"""PDL crash recovery — PDL_RecoveringfromCrash (Section 4.5, Figure 11).

After a failure the physical page mapping table and the valid differential
count table are volatile losses.  One scan over the flash reconstructs
them: every page's spare area is read; differential pages additionally
have their data areas read and parsed.  Creation time stamps disambiguate
co-existing copies (a crash between "program new copy" and "obsolete old
copy" leaves both):

* a base page is adopted when strictly newer than the currently adopted
  base for its pid; otherwise it is marked obsolete (ties arise only from
  GC relocation, where both copies are identical, so either is fine);
* a differential is adopted when strictly newer than both the adopted
  base and the currently adopted differential for its pid;
* differential pages ending the scan with zero adopted entries, and
  superseded base pages, are marked obsolete — the scan's only writes,
  which is why recovery is idempotent under repeated crashes.

The tables recover exactly the state last made durable (buffer flush or
write-through); differentials still in the in-memory write buffer at
crash time are lost, the paper's file-buffer analogy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set

from ..flash.chip import FlashChip
from ..flash.errors import ChecksumError, ProgramError
from ..flash.spare import PageType
from ..ftl.gc import VictimPolicy
from .differential import DEFAULT_COALESCE_GAP, DifferentialError, decode_differential_page
from .pdl import PdlDriver
from .tables import PhysicalPageMappingTable, ValidDifferentialCountTable

#: Accounting phase for the recovery scan.
RECOVERY_PHASE = "recovery"


#: Pages per batched spare read during the scan.  On the file backend the
#: spare region is contiguous, so each chunk is a single sequential read.
SCAN_CHUNK_PAGES = 4096


def _quarantine_corrupt(chip: FlashChip, addr: int, report: "RecoveryReport") -> None:
    """Obsolete a corrupt page, tolerating damage to the spare area itself.

    A page being quarantined is by definition damaged, so its spare may
    be torn or have its program budget exhausted; a failed obsolete mark
    must not abort the whole scan — the page is already outside every
    rebuilt table, which is what matters.  Only an actual write counts
    toward ``stale_pages_obsoleted``.
    """
    try:
        chip.mark_obsolete(addr)
    except ProgramError:
        return
    report.stale_pages_obsoleted += 1


@dataclass
class RecoveryReport:
    """What the scan found — useful for tests and operational logging."""

    pages_scanned: int = 0
    base_pages_adopted: int = 0
    differentials_adopted: int = 0
    stale_pages_obsoleted: int = 0
    corrupt_differential_pages: int = 0
    #: Base pages whose spare lost its pid (e.g. a torn spare program) —
    #: unusable without knowing which logical page they hold.
    corrupt_base_pages: int = 0
    #: Pages whose spare type byte decoded to no known page type.
    corrupt_spare_pages: int = 0
    orphan_pids: List[int] = field(default_factory=list)
    max_timestamp: int = 0


def recover_tables(
    chip: FlashChip,
    ppmt: PhysicalPageMappingTable,
    vdct: ValidDifferentialCountTable,
    driver: "Optional[PdlDriver]" = None,
) -> RecoveryReport:
    """Rebuild ppmt and vdct by scanning flash (Figure 11).

    The caller provides empty tables; the report carries scan statistics
    and the largest timestamp seen.  ``report.max_timestamp`` covers
    *every* programmed spare area and differential entry — including
    stale copies and differential-page headers, whose flush-time stamps
    are strictly newer than the entries inside them — so resuming from
    it restores the invariant that every post-recovery program gets a
    stamp strictly larger than anything already on flash.  When
    ``driver`` is supplied, its timestamp counter is resumed here, so
    callers cannot forget to do it.
    """
    report = RecoveryReport()
    diff_ts: Dict[int, int] = {}  # pid -> timestamp of adopted differential

    def drop_diff(pid: int) -> None:
        """decreaseValidDifferentialCount for pid's adopted differential."""
        entry = ppmt.get(pid)
        if entry is None or entry.diff_addr is None:
            return
        addr = entry.diff_addr
        if vdct.decrement(addr):
            chip.mark_obsolete(addr)
            report.stale_pages_obsoleted += 1
        entry.diff_addr = None
        diff_ts.pop(pid, None)

    with chip.stats.phase(RECOVERY_PHASE):
        for start in range(0, chip.spec.n_pages, SCAN_CHUNK_PAGES):
            addrs = range(start, min(start + SCAN_CHUNK_PAGES, chip.spec.n_pages))
            for addr, spare in zip(addrs, chip.read_spares(addrs)):
                report.pages_scanned += 1
                if spare.is_erased:
                    continue
                # Even stale/obsolete stamps must bound the resumed
                # counter: a reused timestamp would break recovery's
                # strictly-newer adoption rule on the next crash.
                report.max_timestamp = max(report.max_timestamp, spare.timestamp or 0)
                if spare.obsolete:
                    continue
                if spare.is_corrupt:
                    # A damaged type byte: the page holds *something* that
                    # was programmed, so it must not be treated as erased
                    # (the old behaviour re-allocated over it).  Quarantine
                    # by obsoleting — its block stays sealed until GC.
                    report.corrupt_spare_pages += 1
                    _quarantine_corrupt(chip, addr, report)
                    continue
                if spare.type is PageType.BASE:
                    _scan_base_page(chip, addr, spare.pid, spare.timestamp or 0,
                                    ppmt, diff_ts, drop_diff, report)
                elif spare.type is PageType.DIFFERENTIAL:
                    _scan_diff_page(chip, addr, ppmt, vdct, diff_ts, drop_diff, report)
                # Pages of other types (none in a pure-PDL deployment) are
                # left untouched: recovery never destroys data it does not
                # own.

        # Entries whose base page never appeared cannot be served; their
        # differentials alone cannot recreate a page.  This indicates an
        # interrupted initial load; report and drop them.
        orphans = [pid for pid, entry in ppmt.items() if entry.base_addr < 0]
        for pid in orphans:
            drop_diff(pid)
            report.orphan_pids.append(pid)
        for pid in orphans:
            ppmt.remove(pid)

    if driver is not None:
        driver.resume_ts(report.max_timestamp)
    return report


def _scan_base_page(
    chip: FlashChip,
    addr: int,
    pid: Optional[int],
    ts: int,
    ppmt: PhysicalPageMappingTable,
    diff_ts: Dict[int, int],
    drop_diff: Callable[[int], None],
    report: RecoveryReport,
) -> None:
    """Case 1 of Figure 11: the scanned page is a base page."""
    if pid is None:
        # A base page without a pid (torn spare program) cannot be mapped
        # to any logical page; count it under its own bucket and mark it
        # obsolete so later scans and the allocator never trust it.
        report.corrupt_base_pages += 1
        _quarantine_corrupt(chip, addr, report)
        return
    entry = ppmt.get(pid)
    if entry is None:
        ppmt.set_base(pid, addr, ts)
        report.base_pages_adopted += 1
        report.max_timestamp = max(report.max_timestamp, ts)
        return
    current_diff = entry.diff_addr
    if entry.base_addr >= 0 and ts <= entry.base_ts:
        # The adopted base is at least as recent: r is a stale copy.
        chip.mark_obsolete(addr)
        report.stale_pages_obsoleted += 1
        return
    if entry.base_addr >= 0:
        # r is a more recent base page; the old one is obsolete.
        chip.mark_obsolete(entry.base_addr)
        report.stale_pages_obsoleted += 1
    entry.base_addr = addr
    entry.base_ts = ts
    entry.diff_addr = current_diff  # set_base would clear it; keep for the check below
    report.base_pages_adopted += 1
    report.max_timestamp = max(report.max_timestamp, ts)
    if entry.diff_addr is not None and ts > diff_ts.get(pid, -1):
        # The new base supersedes the adopted differential.
        drop_diff(pid)


def _scan_diff_page(
    chip: FlashChip,
    addr: int,
    ppmt: PhysicalPageMappingTable,
    vdct: ValidDifferentialCountTable,
    diff_ts: Dict[int, int],
    drop_diff: Callable[[int], None],
    report: RecoveryReport,
) -> None:
    """Case 2 of Figure 11: the scanned page is a differential page."""
    try:
        data, _spare = chip.read_page(addr)
        diffs = decode_differential_page(data)
    except (ChecksumError, DifferentialError):
        report.corrupt_differential_pages += 1
        _quarantine_corrupt(chip, addr, report)
        return
    adopted = 0
    for diff in diffs:
        entry = ppmt.get(diff.pid)
        base_ts = entry.base_ts if entry is not None and entry.base_addr >= 0 else -1
        if diff.timestamp <= base_ts:
            continue  # older than the adopted base: stale
        if diff.timestamp <= diff_ts.get(diff.pid, -1):
            continue  # an at-least-as-recent differential was adopted
        if entry is None:
            # The differential precedes its base in scan order; register a
            # placeholder row (base_addr < 0 marks "not yet seen").
            ppmt.set_base(diff.pid, -1, -1)
            entry = ppmt.require(diff.pid)
        drop_diff(diff.pid)
        entry.diff_addr = addr
        diff_ts[diff.pid] = diff.timestamp
        vdct.increment(addr)
        adopted += 1
        report.max_timestamp = max(report.max_timestamp, diff.timestamp)
    report.differentials_adopted += adopted
    if vdct.count(addr) == 0:
        # No valid differential remains in r.
        chip.mark_obsolete(addr)
        report.stale_pages_obsoleted += 1


def recover_driver(
    chip: FlashChip,
    max_differential_size: int = 256,
    coalesce_gap: int = DEFAULT_COALESCE_GAP,
    reserve_blocks: int = 2,
    victim_policy: "Optional[VictimPolicy]" = None,
    **driver_kwargs: Any,
) -> "tuple[PdlDriver, RecoveryReport]":
    """Build a fully operational :class:`PdlDriver` from post-crash flash.

    Reconstructs the tables (Figure 11), the allocator's validity bitmap
    and free-block pool, and resumes the timestamp counter.  Fully-erased
    blocks return to the free pool; partially-written blocks are sealed
    until GC reclaims them.  GC tuning (``victim_policy`` or a
    ``gc_config`` keyword) is runtime state, not flash state — callers
    re-supply it on every restart.
    """
    driver = PdlDriver.__new__(PdlDriver)
    PdlDriver.__init__(
        driver,
        chip,
        max_differential_size=max_differential_size,
        coalesce_gap=coalesce_gap,
        reserve_blocks=reserve_blocks,
        victim_policy=victim_policy,
        **driver_kwargs,
    )
    # The fresh __init__ assumed an empty chip; rebuild its state.
    driver.ppmt = PhysicalPageMappingTable()
    driver.vdct = ValidDifferentialCountTable()
    # recover_tables resumes the timestamp counter itself (from the
    # global maximum over all programmed stamps, stale copies included).
    report = recover_tables(chip, driver.ppmt, driver.vdct, driver=driver)
    valid: Set[int] = set()
    for _pid, entry in driver.ppmt.items():
        valid.add(entry.base_addr)
    for diff_page in driver.vdct.pages():
        valid.add(diff_page)
    driver.blocks.rebuild(valid)
    return driver, report
