"""The paper's contribution: page-differential logging (S5–S6 in DESIGN.md).

* :class:`Differential` and the run/page codecs — Section 4.2's structures.
* :class:`DifferentialWriteBuffer` — the one-page staging buffer.
* :class:`PhysicalPageMappingTable` / :class:`ValidDifferentialCountTable`.
* :class:`PdlDriver` — PDL_Writing / PDL_Reading with GC compaction.
* :func:`recover_driver` — PDL_RecoveringfromCrash (Figure 11).
* :func:`fsck_driver` — online single-page failure detection and repair.
"""

from .check import CheckReport, check_driver
from .fsck import FSCK_PHASE, FsckReport, PageFault, fsck_driver
from .differential import (
    DEFAULT_COALESCE_GAP,
    DEFAULT_DIFF_UNIT,
    DIFF_PAGE_MAGIC,
    ENTRY_HEADER_SIZE,
    PAGE_HEADER_SIZE,
    RUN_HEADER_SIZE,
    Differential,
    DifferentialError,
    compute_runs,
    compute_unit_runs,
    decode_differential_page,
    encode_differential_page,
    find_differential,
)
from .pdl import PdlDriver, format_size
from .recovery import RECOVERY_PHASE, RecoveryReport, recover_driver, recover_tables
from .tables import MappingEntry, PhysicalPageMappingTable, ValidDifferentialCountTable
from .write_buffer import BufferFullError, DifferentialWriteBuffer

__all__ = [
    "BufferFullError",
    "CheckReport",
    "check_driver",
    "DEFAULT_COALESCE_GAP",
    "DIFF_PAGE_MAGIC",
    "Differential",
    "DifferentialError",
    "DEFAULT_DIFF_UNIT",
    "DifferentialWriteBuffer",
    "ENTRY_HEADER_SIZE",
    "FSCK_PHASE",
    "FsckReport",
    "MappingEntry",
    "PageFault",
    "PAGE_HEADER_SIZE",
    "PdlDriver",
    "PhysicalPageMappingTable",
    "RECOVERY_PHASE",
    "RUN_HEADER_SIZE",
    "RecoveryReport",
    "ValidDifferentialCountTable",
    "compute_runs",
    "compute_unit_runs",
    "decode_differential_page",
    "encode_differential_page",
    "find_differential",
    "format_size",
    "fsck_driver",
    "recover_driver",
    "recover_tables",
]
