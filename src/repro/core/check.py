"""Consistency checking (fsck) for PDL state.

Cross-validates the four representations of truth a running PDL driver
maintains — the physical page mapping table, the valid differential
count table, the allocator's validity bitmap, and the flash contents
themselves — without charging simulated I/O (it uses the chip's
cost-free peek interface).  Violations indicate a driver bug, not a
recoverable condition; tests run the checker after soak workloads and
after crash recovery.

Checked invariants:

1. every ppmt base address holds a valid BASE page whose spare pid and
   timestamp match the table;
2. every ppmt differential address holds a valid DIFFERENTIAL page that
   actually contains an entry for that pid, newer than the base page;
3. vdct counts equal the number of ppmt rows referencing each page;
4. the allocator's validity bitmap marks exactly the referenced pages;
5. no two ppmt rows share a base address;
6. buffered differentials (not yet in flash) are newer than both the
   base page and any flash differential for their pid;
7. every referenced page whose spare area records a data checksum still
   matches it (single-page failure detection — ``fsck`` repairs what
   this check can only flag).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import List

from ..flash.spare import PageType, data_checksum
from .differential import DifferentialError, decode_differential_page
from .pdl import PdlDriver


@dataclass
class CheckReport:
    """Outcome of a consistency check."""

    pages_checked: int = 0
    violations: List[str] = field(default_factory=list)

    @property
    def consistent(self) -> bool:
        return not self.violations

    def add(self, message: str) -> None:
        self.violations.append(message)

    def raise_if_inconsistent(self) -> None:
        if self.violations:
            summary = "; ".join(self.violations[:5])
            more = len(self.violations) - 5
            if more > 0:
                summary += f" (+{more} more)"
            raise AssertionError(f"PDL state inconsistent: {summary}")


def check_driver(driver: PdlDriver) -> CheckReport:
    """Run all invariant checks against a live driver."""
    report = CheckReport()
    chip = driver.chip
    base_addrs = Counter()
    diff_refs = Counter()

    for pid, entry in driver.ppmt.items():
        report.pages_checked += 1
        base_addrs[entry.base_addr] += 1
        # (1) base page integrity
        spare = chip.peek_spare(entry.base_addr)
        if spare.type is not PageType.BASE:
            report.add(f"pid {pid}: base addr {entry.base_addr} holds {spare.type!r}")
            continue
        if spare.obsolete:
            report.add(f"pid {pid}: base page {entry.base_addr} is obsolete")
        if spare.pid != pid:
            report.add(
                f"pid {pid}: base page {entry.base_addr} labelled pid {spare.pid}"
            )
        if spare.timestamp != entry.base_ts:
            report.add(
                f"pid {pid}: base ts {entry.base_ts} != spare ts {spare.timestamp}"
            )
        if not driver.blocks.is_valid(entry.base_addr):
            report.add(f"pid {pid}: base page {entry.base_addr} not in bitmap")
        # (7) base data matches its stored checksum
        if (
            spare.checksum is not None
            and data_checksum(chip.peek_data(entry.base_addr)) != spare.checksum
        ):
            report.add(
                f"pid {pid}: base page {entry.base_addr} fails its data checksum"
            )

        # (2) differential page integrity
        if entry.diff_addr is not None:
            diff_refs[entry.diff_addr] += 1
            dspare = chip.peek_spare(entry.diff_addr)
            if dspare.type is not PageType.DIFFERENTIAL:
                report.add(
                    f"pid {pid}: diff addr {entry.diff_addr} holds {dspare.type!r}"
                )
                continue
            if dspare.obsolete:
                report.add(f"pid {pid}: diff page {entry.diff_addr} is obsolete")
            # (7) differential data matches its stored checksum
            diff_data = chip.peek_data(entry.diff_addr)
            if (
                dspare.checksum is not None
                and data_checksum(diff_data) != dspare.checksum
            ):
                report.add(
                    f"pid {pid}: diff page {entry.diff_addr} fails its data checksum"
                )
            try:
                diffs = decode_differential_page(diff_data)
            except DifferentialError as exc:
                report.add(f"pid {pid}: diff page {entry.diff_addr} corrupt: {exc}")
                continue
            match = [d for d in diffs if d.pid == pid]
            if not match:
                report.add(
                    f"pid {pid}: diff page {entry.diff_addr} has no entry for it"
                )
            elif match[0].timestamp <= entry.base_ts:
                report.add(
                    f"pid {pid}: flash differential ts {match[0].timestamp} "
                    f"not newer than base ts {entry.base_ts}"
                )
            if not driver.blocks.is_valid(entry.diff_addr):
                report.add(f"pid {pid}: diff page {entry.diff_addr} not in bitmap")

        # (6) buffered differential freshness
        buffered = driver.buffer.get(pid)
        if buffered is not None and buffered.timestamp <= entry.base_ts:
            report.add(
                f"pid {pid}: buffered differential ts {buffered.timestamp} "
                f"not newer than base ts {entry.base_ts}"
            )

    # (5) base addresses unique
    for addr, count in base_addrs.items():
        if count > 1:
            report.add(f"base address {addr} referenced by {count} pids")

    # (3) vdct counts match references
    vdct_counts = dict(driver.vdct.items())
    if vdct_counts != dict(diff_refs):
        missing = {a: c for a, c in diff_refs.items() if vdct_counts.get(a) != c}
        extra = {a: c for a, c in vdct_counts.items() if a not in diff_refs}
        report.add(f"vdct mismatch: refs={missing} orphan_counts={extra}")

    # (4) bitmap marks exactly the referenced pages
    referenced = set(base_addrs) | set(diff_refs)
    for addr in range(chip.spec.n_pages):
        if driver.blocks.is_valid(addr) and addr not in referenced:
            report.add(f"bitmap marks unreferenced page {addr} valid")

    return report
