"""PDL's in-memory tables (Section 4.2, Figure 6).

* :class:`PhysicalPageMappingTable` (*ppmt*) maps a logical page id to its
  base-page address and, when one exists, the address of the differential
  page holding its current differential.  Indirection is required because
  the out-place scheme moves physical pages.
* :class:`ValidDifferentialCountTable` (*vdct*) counts, per differential
  page, how many of its differentials are still current.  When the count
  reaches zero the page is garbage and is marked obsolete.

Both tables are volatile; :mod:`repro.core.recovery` reconstructs them
from flash after a crash.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Optional, Tuple


@dataclass
class MappingEntry:
    """One ppmt row: where a logical page currently lives.

    ``base_ts`` mirrors the creation time stamp stored in the base page's
    spare area; keeping it in memory lets runtime code and the checkpoint
    extension reason about recency without extra flash reads.
    ``diff_ts`` mirrors the adopted differential's entry stamp the same
    way — recovery's seeded tail scan and the mapping journal both need
    it to apply the strictly-newer adoption rule without re-reading the
    differential page.
    """

    base_addr: int
    base_ts: int
    diff_addr: Optional[int] = None
    diff_ts: Optional[int] = None

    def copy(self) -> "MappingEntry":
        return MappingEntry(self.base_addr, self.base_ts, self.diff_addr, self.diff_ts)


class PhysicalPageMappingTable:
    """pid → (base page address, differential page address)."""

    def __init__(self) -> None:
        self._entries: Dict[int, MappingEntry] = {}

    def get(self, pid: int) -> Optional[MappingEntry]:
        return self._entries.get(pid)

    def require(self, pid: int) -> MappingEntry:
        entry = self._entries.get(pid)
        if entry is None:
            raise KeyError(f"logical page {pid} has no mapping entry")
        return entry

    def set_base(self, pid: int, addr: int, timestamp: int) -> None:
        """Point ``pid`` at a new base page and clear its differential."""
        entry = self._entries.get(pid)
        if entry is None:
            self._entries[pid] = MappingEntry(base_addr=addr, base_ts=timestamp)
        else:
            entry.base_addr = addr
            entry.base_ts = timestamp
            entry.diff_addr = None
            entry.diff_ts = None

    def move_base(self, pid: int, addr: int) -> None:
        """Relocate the base page (GC) without touching the differential."""
        self.require(pid).base_addr = addr

    def set_diff(
        self, pid: int, addr: Optional[int], timestamp: Optional[int] = None
    ) -> None:
        entry = self.require(pid)
        entry.diff_addr = addr
        entry.diff_ts = timestamp if addr is not None else None

    def remove(self, pid: int) -> Optional[MappingEntry]:
        """Drop a row entirely (recovery of orphaned entries)."""
        return self._entries.pop(pid, None)

    def __contains__(self, pid: int) -> bool:
        return pid in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def items(self) -> Iterator[Tuple[int, MappingEntry]]:
        return iter(self._entries.items())

    def pids(self) -> Iterator[int]:
        return iter(self._entries.keys())


class ValidDifferentialCountTable:
    """differential page address → count of still-valid differentials."""

    def __init__(self) -> None:
        self._counts: Dict[int, int] = {}

    def increment(self, addr: int) -> None:
        self._counts[addr] = self._counts.get(addr, 0) + 1

    def decrement(self, addr: int) -> bool:
        """Decrease the count; True when it reached zero (page is garbage).

        The entry is removed at zero — the caller marks the physical page
        obsolete (decreaseValidDifferentialCount in Figure 8).
        """
        count = self._counts.get(addr)
        if count is None:
            raise KeyError(f"differential page {addr} not tracked")
        if count <= 1:
            del self._counts[addr]
            return True
        self._counts[addr] = count - 1
        return False

    def count(self, addr: int) -> int:
        return self._counts.get(addr, 0)

    def seed(self, rows: Iterable[Tuple[int, int]]) -> None:
        """Bulk-load (addr, count) rows (snapshot restore path)."""
        self._counts = {addr: n for addr, n in rows if n > 0}

    def remove(self, addr: int) -> int:
        """Forget a page entirely (its block was erased by GC)."""
        return self._counts.pop(addr, 0)

    def pages(self) -> Iterator[int]:
        return iter(self._counts.keys())

    def items(self) -> Iterator[Tuple[int, int]]:
        return iter(self._counts.items())

    def __len__(self) -> int:
        return len(self._counts)

    def total_valid(self) -> int:
        return sum(self._counts.values())
