"""Online single-page failure detection and repair (fsck).

:func:`fsck_driver` is the online repair companion to the offline
invariant checker (:mod:`repro.core.check`) and the crash-recovery scan
(:mod:`repro.core.recovery`).  Where ``check_driver`` only *flags*
damage and the Figure-11 scan rebuilds volatile tables from trusted
flash, fsck assumes the flash itself may lie — bit rot, misdirected
writes and torn spare programs, the single-page failure class of Graefe
& Kuno — and repairs what it can **online**, without a full-device
restore, using the redundancy PDL leaves lying around:

* a stale or relocated **copy** of a base page (GC crash residue, Case-3
  predecessors) can be re-adopted, relocated to a fresh page, and the
  surviving differential chain replays onto it at read time;
* an **older differential** (obsoleted by a newer flush but still
  physically present) can substitute for a corrupted differential page,
  rolling the page back to its most recent surviving version;
* a page with no surviving copy anywhere is **declared lost** with a
  precise report, and its mapping is removed so reads fail loudly
  instead of serving garbage.

The decision tree per damaged page (see ``docs/integrity.md``):

1. live base page damaged → exact-timestamp copy? relocate it, keep the
   differential chain (`repaired_copy`); older copy only? adopt it and
   drop now-inapplicable differentials (`repaired_stale`); no copy?
   remove the mapping (`lost`).
2. referenced differential page damaged → surviving older differential
   with ``ts > base_ts``? re-flush it to a fresh page
   (`repaired_chain`); none? revert the pid to its base image
   (`reverted`).
3. checkpoint-region damage is *reported* only — the ping-pong snapshot
   protocol self-heals on the next restart (CRC-sealed snapshots fall
   back to the full Figure-11 scan).
4. unreferenced damaged pages are quarantined (marked obsolete) so the
   allocator and future scans never trust them.

fsck charges real simulated I/O (it is an online scan, not a debug
peek): one Tread per spare area plus one per programmed data area, and
Twrites for every repair.  The chip's read cache is cleared first so a
stale cached copy can never mask — or survive — device-level damage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..flash.chip import FlashChip
from ..flash.errors import ProgramError
from ..flash.spare import CHECKSUM_HEADER_SIZE, PageType, SpareArea, data_checksum
from ..ftl.errors import OutOfSpaceError
from .check import CheckReport, check_driver
from .differential import (
    Differential,
    DifferentialError,
    decode_differential_page,
    encode_differential_page,
)
from .pdl import PdlDriver
from .tables import MappingEntry

#: Accounting phase for fsck I/O.
FSCK_PHASE = "fsck"

#: Pages per batched read during the sweep (matches the recovery scan).
FSCK_CHUNK_PAGES = 4096


@dataclass(frozen=True)
class PageFault:
    """One detected fault and what fsck did about it."""

    addr: int
    role: str  #: "base" | "differential" | "checkpoint" | "unreferenced"
    kind: str  #: "checksum" | "spare" | "decode" | "missing"
    pid: Optional[int]
    action: str  #: repaired_copy | repaired_stale | repaired_chain |
    #: reverted | quarantined | lost | reported
    detail: str = ""


@dataclass
class FsckReport:
    """Outcome of one fsck pass (or a merged per-shard set)."""

    pages_scanned: int = 0
    checksum_failures: int = 0
    corrupt_spare_pages: int = 0
    faults: List[PageFault] = field(default_factory=list)
    repaired_base_pages: int = 0
    repaired_differentials: int = 0
    stale_pids: List[int] = field(default_factory=list)
    reverted_pids: List[int] = field(default_factory=list)
    lost_pids: List[int] = field(default_factory=list)
    quarantined_pages: int = 0
    scan_reads: int = 0
    repair_writes: int = 0
    check: Optional[CheckReport] = None
    per_shard: Optional[List["FsckReport"]] = None

    @property
    def detected(self) -> int:
        """Faults found (one per damaged page/pid pairing)."""
        return len(self.faults)

    @property
    def clean(self) -> bool:
        return not self.faults

    @property
    def repaired(self) -> int:
        """Pages restored to full service (copy, stale or chain repair)."""
        return (
            self.repaired_base_pages
            + self.repaired_differentials
            + len(self.stale_pids)
        )

    @property
    def data_loss_pids(self) -> List[int]:
        """Pids whose newest version could not be recovered (any rollback
        or loss counts — ``lost_pids`` alone is total loss)."""
        return sorted(set(self.stale_pids) | set(self.reverted_pids) | set(self.lost_pids))

    def add(self, fault: PageFault) -> None:
        self.faults.append(fault)

    @classmethod
    def merge(cls, reports: List["FsckReport"]) -> "FsckReport":
        """Sum per-shard reports into one array-level view."""
        merged = cls(per_shard=list(reports))
        for report in reports:
            merged.pages_scanned += report.pages_scanned
            merged.checksum_failures += report.checksum_failures
            merged.corrupt_spare_pages += report.corrupt_spare_pages
            merged.faults.extend(report.faults)
            merged.repaired_base_pages += report.repaired_base_pages
            merged.repaired_differentials += report.repaired_differentials
            merged.stale_pids.extend(report.stale_pids)
            merged.reverted_pids.extend(report.reverted_pids)
            merged.lost_pids.extend(report.lost_pids)
            merged.quarantined_pages += report.quarantined_pages
            merged.scan_reads += report.scan_reads
            merged.repair_writes += report.repair_writes
        return merged


def fsck_driver(driver: PdlDriver, repair: bool = True) -> FsckReport:
    """Scan a live PDL driver's chip, detect corruption, repair online.

    With ``repair=False`` the scan only detects and reports (a dry run);
    with the default ``repair=True`` every repairable page is fixed in
    place and the pass ends with a full :func:`check_driver` whose
    outcome is attached as ``report.check``.
    """
    chip = driver.chip
    report = FsckReport(pages_scanned=chip.spec.n_pages)
    if chip.cache is not None:
        # Device truth only: a cached copy of a damaged (or about to be
        # repaired) page must not shadow what is actually stored.
        chip.cache.clear()

    io_before = chip.stats.of_phase(FSCK_PHASE)
    with chip.stats.phase(FSCK_PHASE):
        state = _sweep(chip, report)
        state.expect_checksum = _checksum_capable(driver) and bool(state.verified)
        _check_bases(driver, state, report, repair)
        _check_differentials(driver, state, report, repair)
        _quarantine_unreferenced(driver, state, report, repair)
    io_after = chip.stats.of_phase(FSCK_PHASE)
    report.scan_reads = io_after.reads - io_before.reads
    report.repair_writes = io_after.writes - io_before.writes

    if repair:
        report.check = check_driver(driver)
    return report


class _SweepState:
    """Everything the repair passes need from the full-media sweep."""

    def __init__(self) -> None:
        #: addr -> decoded spare, programmed pages only.
        self.spares: Dict[int, SpareArea] = {}
        #: addr -> data image for BASE/DIFFERENTIAL pages (repair donors).
        self.data: Dict[int, bytes] = {}
        #: Pages whose stored checksum mismatched the data read back.
        self.bad_data: set = set()
        #: Pages whose data checksum was present and verified.
        self.verified: set = set()
        #: Whether a missing checksum on this image counts as damage —
        #: set after the sweep (see :func:`_checksum_capable`).
        self.expect_checksum: bool = False
        #: pid -> [(ts, addr, obsolete)] over every BASE copy on flash.
        self.base_copies: Dict[int, List[Tuple[int, int, bool]]] = {}
        #: Every DIFFERENTIAL-typed page (valid and obsolete).
        self.diff_pages: List[int] = []
        #: Pages already dispositioned by the base/differential passes
        #: (the unreferenced sweep must not report them twice).
        self.handled: set = set()
        #: Lazily decoded differential pages (salvage candidates).
        self._decoded: Dict[int, Optional[List[Differential]]] = {}

    def decoded_diffs(self, addr: int) -> Optional[List[Differential]]:
        """Decode a differential page once; None when undecodable."""
        if addr not in self._decoded:
            try:
                self._decoded[addr] = decode_differential_page(self.data[addr])
            except (DifferentialError, KeyError):
                self._decoded[addr] = None
        return self._decoded[addr]


def _sweep(chip: FlashChip, report: FsckReport) -> _SweepState:
    """Full-media scan: every spare area, then every programmed data area."""
    state = _SweepState()
    for start in range(0, chip.spec.n_pages, FSCK_CHUNK_PAGES):
        addrs = range(start, min(start + FSCK_CHUNK_PAGES, chip.spec.n_pages))
        for addr, spare in zip(addrs, chip.read_spares(addrs)):
            if spare.is_erased:
                continue
            state.spares[addr] = spare
            if spare.is_corrupt:
                report.corrupt_spare_pages += 1
            elif spare.type is PageType.BASE and spare.pid is not None:
                state.base_copies.setdefault(spare.pid, []).append(
                    (spare.timestamp or 0, addr, spare.obsolete)
                )
            elif spare.type is PageType.DIFFERENTIAL:
                state.diff_pages.append(addr)

    programmed = sorted(state.spares)
    for start in range(0, len(programmed), FSCK_CHUNK_PAGES):
        chunk = programmed[start : start + FSCK_CHUNK_PAGES]
        for addr, (data, spare) in zip(
            chunk, chip.read_pages(chunk, verify=False)
        ):
            if spare.checksum is not None:
                if data_checksum(data) != spare.checksum:
                    state.bad_data.add(addr)
                    report.checksum_failures += 1
                else:
                    state.verified.add(addr)
            if spare.type in (PageType.BASE, PageType.DIFFERENTIAL):
                state.data[addr] = data
    return state


def _mark_obsolete_quietly(chip: FlashChip, addr: int) -> None:
    """Quarantine a page, tolerating damage to the spare area itself."""
    try:
        chip.mark_obsolete(addr)
    except ProgramError:
        # Erased or budget-exhausted spare: nothing more to clear; the
        # page is already outside every table, which is what matters.
        pass


def _checkpoint_region_pages(driver: PdlDriver) -> int:
    """Pages reserved for restart metadata (checkpoint + mapping regions).

    The allocator's ``exclude_blocks`` is the single source of truth: it
    covers the clean-shutdown checkpoint region and, for demand-paged
    drivers, the mapping journal/snapshot region right after it.  Both
    hold only CRC-sealed CHECKPOINT-type pages, so fsck applies the same
    report-but-never-touch policy to the whole prefix.
    """
    return driver.blocks.exclude_blocks * driver.spec.pages_per_block


def _checksum_capable(driver: PdlDriver) -> bool:
    """Whether this chip's geometry can carry data checksums at all.

    Geometry alone is *necessary but not sufficient* evidence that a
    missing checksum means a torn spare program: a pre-checksum image
    written on a wide-spare chip (the default 64-byte spare) decodes
    ``checksum=None`` on every page — indistinguishable, page by page,
    from a chip-wide torn-spare event.  The missing-checksum-is-torn
    rule is therefore armed (``state.expect_checksum``) only when the
    geometry has room **and** at least one checksum actually verified
    during the sweep: on a current-format image essentially every
    healthy page does, while a pre-checksum image has none, so old
    images come back clean without a format flag (``docs/integrity.md``).
    """
    return driver.spec.page_spare_size >= CHECKSUM_HEADER_SIZE


def _check_bases(
    driver: PdlDriver, state: _SweepState, report: FsckReport, repair: bool
) -> None:
    """Decision-tree step 1: every live base page, against the mapping."""
    expect_checksum = state.expect_checksum
    for pid, entry in list(driver.ppmt.items()):
        addr = entry.base_addr
        spare = state.spares.get(addr)
        kind = None
        if spare is None or spare.is_erased:
            kind = "missing"
        elif spare.is_corrupt:
            kind = "spare"
        elif (
            spare.type is not PageType.BASE
            or spare.obsolete
            or spare.pid != pid
            or (spare.timestamp or 0) != entry.base_ts
        ):
            kind = "spare"
        elif addr in state.bad_data:
            kind = "checksum"
        elif spare.checksum is None and expect_checksum:
            kind = "spare"  # torn away: every program here stamps one
        if kind is None:
            continue
        if not repair:
            report.add(PageFault(addr, "base", kind, pid, "reported"))
            continue
        _repair_base(driver, state, report, pid, entry, kind)


def _repair_base(
    driver: PdlDriver,
    state: _SweepState,
    report: FsckReport,
    pid: int,
    entry: MappingEntry,
    kind: str,
) -> None:
    chip = driver.chip
    bad_addr = entry.base_addr
    donors = [
        (ts, addr)
        for ts, addr, _obsolete in state.base_copies.get(pid, [])
        if addr != bad_addr
        and addr not in state.bad_data
        and addr in state.data
        # A donor whose checksum was torn away is as unverifiable as
        # the page it would repair; never rebuild from one.
        and not (state.expect_checksum and state.spares[addr].checksum is None)
        and ts <= entry.base_ts
    ]
    exact = [(ts, addr) for ts, addr in donors if ts == entry.base_ts]
    older = sorted((ts, addr) for ts, addr in donors if ts < entry.base_ts)

    def retire_bad_page() -> None:
        if driver.blocks.is_valid(bad_addr):
            driver.blocks.note_invalid(bad_addr)
        state.handled.add(bad_addr)
        # A "missing" page reads back erased: there is nothing on flash
        # to mark obsolete, so it is not a quarantine.
        if bad_addr in state.spares:
            _mark_obsolete_quietly(chip, bad_addr)
            report.quarantined_pages += 1

    try:
        if exact:
            # An identical copy survives (GC relocation residue or a
            # crash window left both): relocate it and keep the
            # differential chain — it still applies bit-for-bit.
            _ts, donor = exact[0]
            new_addr = driver.blocks.allocate(stream=driver._base_stream)
            chip.program_page(
                new_addr,
                state.data[donor],
                SpareArea(type=PageType.BASE, pid=pid, timestamp=entry.base_ts),
            )
            driver.blocks.note_valid(new_addr)
            driver.ppmt.move_base(pid, new_addr)
            retire_bad_page()
            report.repaired_base_pages += 1
            report.add(
                PageFault(
                    bad_addr, "base", kind, pid, "repaired_copy",
                    f"relocated surviving copy {donor} to {new_addr}",
                )
            )
            return
        if older:
            # Only an older version survives: adopt it and drop every
            # differential — they were computed against the lost image.
            donor_ts, donor = older[-1]
            new_addr = driver.blocks.allocate(stream=driver._base_stream)
            chip.program_page(
                new_addr,
                state.data[donor],
                SpareArea(type=PageType.BASE, pid=pid, timestamp=donor_ts),
            )
            driver.blocks.note_valid(new_addr)
            old_diff = entry.diff_addr
            driver.ppmt.set_base(pid, new_addr, donor_ts)  # clears diff
            driver.buffer.remove(pid)
            if old_diff is not None:
                driver._drop_diff_ref(old_diff)
            retire_bad_page()
            report.stale_pids.append(pid)
            report.add(
                PageFault(
                    bad_addr, "base", kind, pid, "repaired_stale",
                    f"rolled back to copy {donor} at ts {donor_ts}",
                )
            )
            return
    except OutOfSpaceError:
        report.add(
            PageFault(
                bad_addr, "base", kind, pid, "reported",
                "no free page available for relocation",
            )
        )
        return

    # No surviving copy anywhere: the page is lost.  Remove the mapping
    # so reads raise UnknownPageError instead of serving damaged bytes.
    old_diff = entry.diff_addr
    driver.buffer.remove(pid)
    if old_diff is not None:
        driver._drop_diff_ref(old_diff)
    driver.ppmt.remove(pid)
    retire_bad_page()
    report.lost_pids.append(pid)
    report.add(PageFault(bad_addr, "base", kind, pid, "lost"))


def _check_differentials(
    driver: PdlDriver, state: _SweepState, report: FsckReport, repair: bool
) -> None:
    """Decision-tree step 2: every referenced differential page."""
    expect_checksum = state.expect_checksum
    referenced: Dict[int, List[int]] = {}
    for pid, entry in driver.ppmt.items():
        if entry.diff_addr is not None:
            referenced.setdefault(entry.diff_addr, []).append(pid)

    for addr, pids in sorted(referenced.items()):
        spare = state.spares.get(addr)
        kind = None
        if spare is None or spare.is_erased:
            kind = "missing"
        elif spare.is_corrupt:
            kind = "spare"
        elif spare.type is not PageType.DIFFERENTIAL or spare.obsolete:
            kind = "spare"
        elif addr in state.bad_data:
            kind = "checksum"
        elif spare.checksum is None and expect_checksum:
            # The data may decode fine, but with the checksum torn away
            # it is unverifiable; treat like checksum damage (salvage or
            # revert) rather than trust bytes nothing vouches for.
            kind = "spare"
        elif state.decoded_diffs(addr) is None:
            kind = "decode"
        else:
            decoded = {d.pid for d in state.decoded_diffs(addr)}
            if any(pid not in decoded for pid in pids):
                kind = "decode"
        if kind is None:
            continue
        if not repair:
            for pid in pids:
                report.add(PageFault(addr, "differential", kind, pid, "reported"))
            continue
        _repair_differential_page(driver, state, report, addr, pids, kind)


def _repair_differential_page(
    driver: PdlDriver,
    state: _SweepState,
    report: FsckReport,
    addr: int,
    pids: List[int],
    kind: str,
) -> None:
    """Salvage what the corrupted differential page held, then retire it."""
    chip = driver.chip
    salvaged: List[Tuple[int, Differential]] = []
    for pid in pids:
        entry = driver.ppmt.require(pid)
        buffered = driver.buffer.get(pid)
        if buffered is not None and buffered.timestamp > entry.base_ts:
            # A newer buffered differential shadows the flash page on
            # every read; detaching the damaged page loses nothing.
            driver.ppmt.set_diff(pid, None)
            report.repaired_differentials += 1
            report.add(
                PageFault(
                    addr, "differential", kind, pid, "repaired_chain",
                    "newer buffered differential supersedes the damaged page",
                )
            )
            continue
        best: Optional[Differential] = None
        for other in state.diff_pages:
            if other == addr or other in state.bad_data:
                continue
            if state.expect_checksum and state.spares[other].checksum is None:
                # Same rule as for referenced pages: with its checksum
                # torn away the donor's bytes are unverifiable —
                # reverting beats re-flushing bytes nothing vouches for.
                continue
            diffs = state.decoded_diffs(other)
            if diffs is None:
                continue
            for diff in diffs:
                if diff.pid != pid or diff.timestamp <= entry.base_ts:
                    continue
                if best is None or diff.timestamp > best.timestamp:
                    best = diff
        if best is not None:
            salvaged.append((pid, best))
        else:
            # Nothing newer than the base survives: the page rolls back
            # to its base image.
            driver.ppmt.set_diff(pid, None)
            report.reverted_pids.append(pid)
            report.add(
                PageFault(
                    addr, "differential", kind, pid, "reverted",
                    "no surviving differential newer than the base",
                )
            )

    # Retire the damaged page before re-flushing (its vdct rows are void).
    driver.vdct.remove(addr)
    if driver.blocks.is_valid(addr):
        driver.blocks.note_invalid(addr)
    state.handled.add(addr)
    if addr in state.spares:  # a "missing" page has nothing to quarantine
        _mark_obsolete_quietly(chip, addr)
        report.quarantined_pages += 1

    if not salvaged:
        return
    try:
        _reflush_salvaged(driver, salvaged)
    except OutOfSpaceError:
        # Could not write the salvage page: the affected pids revert.
        for pid, _diff in salvaged:
            driver.ppmt.set_diff(pid, None)
            report.reverted_pids.append(pid)
            report.add(
                PageFault(
                    addr, "differential", kind, pid, "reverted",
                    "salvage found but no free page to re-flush it",
                )
            )
        return
    for pid, diff in salvaged:
        report.repaired_differentials += 1
        report.add(
            PageFault(
                addr, "differential", kind, pid, "repaired_chain",
                f"re-flushed surviving differential at ts {diff.timestamp}",
            )
        )


def _reflush_salvaged(
    driver: PdlDriver, salvaged: List[Tuple[int, Differential]]
) -> None:
    """Write salvaged differentials to fresh pages, re-pointing entries."""
    chip = driver.chip
    capacity = driver.buffer.capacity
    group: List[Tuple[int, Differential]] = []
    used = 0

    def flush_group() -> None:
        nonlocal group, used
        if not group:
            return
        payload = encode_differential_page(
            [diff for _pid, diff in group], driver.page_size
        )
        new_addr = driver.blocks.allocate(stream=driver._diff_stream)
        chip.program_page(
            new_addr,
            payload,
            SpareArea(type=PageType.DIFFERENTIAL, timestamp=driver._next_ts()),
        )
        driver.blocks.note_valid(new_addr)
        for pid, diff in group:
            driver.ppmt.set_diff(pid, new_addr, diff.timestamp)
            driver.vdct.increment(new_addr)
        group = []
        used = 0

    for pid, diff in salvaged:
        if used + diff.size > capacity:
            flush_group()
        group.append((pid, diff))
        used += diff.size
    flush_group()


def _quarantine_unreferenced(
    driver: PdlDriver, state: _SweepState, report: FsckReport, repair: bool
) -> None:
    """Decision-tree steps 3–4: checkpoint region and unreferenced damage."""
    chip = driver.chip
    region_end = _checkpoint_region_pages(driver)
    expect_checksum = state.expect_checksum

    # Checkpoint-region pages only ever hold CHECKPOINT pages written by
    # program_page; anything else there — wrong type (a misdirected
    # write), failed or missing checksum (rot / a torn program), corrupt
    # spare — is reported but never touched: snapshots are CRC-sealed
    # and restart falls back to the Figure-11 scan, which self-heals.
    for addr in range(region_end):
        spare = state.spares.get(addr)
        if spare is None:
            continue
        kind = None
        if spare.is_corrupt:
            kind = "spare"
        elif spare.type is not PageType.CHECKPOINT:
            kind = "spare"
        elif addr in state.bad_data:
            kind = "checksum"
        elif spare.checksum is None and expect_checksum:
            kind = "spare"
        if kind is None:
            continue
        state.handled.add(addr)
        report.add(
            PageFault(
                addr, "checkpoint", kind, None, "reported",
                "snapshot protocol falls back to the full scan",
            )
        )

    referenced = {entry.base_addr for _pid, entry in driver.ppmt.items()}
    referenced |= {
        entry.diff_addr
        for _pid, entry in driver.ppmt.items()
        if entry.diff_addr is not None
    }
    for addr in sorted(set(state.bad_data) | {
        a for a, s in state.spares.items() if s.is_corrupt
    }):
        if addr in referenced or addr in state.handled or addr < region_end:
            continue  # handled by the base/differential/region passes
        spare = state.spares.get(addr)
        kind = "spare" if spare is not None and spare.is_corrupt else "checksum"
        if spare is not None and spare.obsolete:
            continue  # already-garbage pages need no quarantine
        if not repair:
            report.add(PageFault(addr, "unreferenced", kind, None, "reported"))
            continue
        _mark_obsolete_quietly(chip, addr)
        report.quarantined_pages += 1
        report.add(PageFault(addr, "unreferenced", kind, None, "quarantined"))
