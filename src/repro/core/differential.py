"""The page-differential: computation, serialization, and merging.

The paper defines the *differential* of a logical page as the difference
between the original (base) page in flash and the up-to-date page in
memory (Section 4.1).  Unlike a log-based method's update-log history, a
differential stores each changed region once — the paper's
``aaaaaa → bbbbba → bcccba`` example yields the single region ``bcccb``
rather than the two logs ``bbbbb`` and ``ccc``.

Wire format (Section 4.2 gives the logical structure
``<pid, timestamp, [offset, length, changed data]+>``; the concrete byte
layout is ours, little-endian)::

    entry  := u32 pid | u64 timestamp | u16 n_runs | u16 data_len
              | n_runs × (u16 offset, u16 length) | run data…
    page   := u16 magic 0xD1FF | u16 count | count × entry

``data_len`` is redundant (the sum of run lengths) and validates decoding.
The differential's *size* — what Max_Differential_Size compares against —
is its full encoded length including all metadata, which is why a heavily
updated page can exceed one page and trigger the paper's Case 3.

Diffing is numpy-accelerated; changed regions separated by fewer
unchanged bytes than a run header costs are coalesced (configurable
``coalesce_gap``), trading a few unchanged bytes for less metadata.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..ftl.base import ChangeRun

_ENTRY_HEADER = struct.Struct("<IQHH")
_RUN_HEADER = struct.Struct("<HH")
_PAGE_HEADER = struct.Struct("<HH")

ENTRY_HEADER_SIZE = _ENTRY_HEADER.size  # 16 bytes
RUN_HEADER_SIZE = _RUN_HEADER.size  # 4 bytes
PAGE_HEADER_SIZE = _PAGE_HEADER.size  # 4 bytes

#: Magic tag of a differential page's data area.
DIFF_PAGE_MAGIC = 0xD1FF

#: Default coalescing distance: merging two runs separated by a gap of up
#: to one run header's worth of unchanged bytes never grows the encoding.
DEFAULT_COALESCE_GAP = RUN_HEADER_SIZE

#: Default comparison granularity for PDL differentials.  The paper's
#: differential "contains not only the changed data but also the meta
#: data such as offsets and lengths", and footnote 16 observes the
#: differential growing from 0 to one page and resetting through Case 3,
#: averaging about half a page.  That sawtooth requires the encoded size
#: to exceed one page *before* literally every byte has changed — i.e. a
#: unit-granular encoder that emits one entry per changed unit.  16 bytes
#: reproduces the paper's steady state; see DESIGN.md.
DEFAULT_DIFF_UNIT = 16


class DifferentialError(ValueError):
    """Raised when encoded differential data cannot be decoded."""


def compute_runs(
    base: bytes, new: bytes, coalesce_gap: int = DEFAULT_COALESCE_GAP
) -> Tuple[ChangeRun, ...]:
    """Byte-wise difference of two equal-length pages as change runs.

    Returns maximal runs of changed bytes; runs whose separating gap of
    unchanged bytes is at most ``coalesce_gap`` are merged (the merged run
    then carries those unchanged bytes, which is harmless on apply).
    """
    if len(base) != len(new):
        raise ValueError(
            f"page images differ in size: {len(base)} vs {len(new)} bytes"
        )
    if base == new:
        return ()
    a = np.frombuffer(base, dtype=np.uint8)
    b = np.frombuffer(new, dtype=np.uint8)
    changed = np.flatnonzero(a != b)
    # Consecutive changed offsets whose distance exceeds gap+1 start a new run.
    splits = np.flatnonzero(np.diff(changed) > coalesce_gap + 1)
    starts = np.concatenate(([0], splits + 1))
    ends = np.concatenate((splits, [len(changed) - 1]))
    return tuple(
        ChangeRun(int(changed[s]), new[int(changed[s]) : int(changed[e]) + 1])
        for s, e in zip(starts, ends)
    )


def compute_unit_runs(base: bytes, new: bytes, unit: int = DEFAULT_DIFF_UNIT) -> Tuple[ChangeRun, ...]:
    """Unit-granular difference: one run per changed ``unit``-byte chunk.

    Pages are compared in fixed-size units; every unit containing at
    least one changed byte is emitted as its own run carrying the unit's
    full new contents.  Adjacent changed units are deliberately *not*
    coalesced — per-unit entries keep the metadata overhead proportional
    to coverage, which is what makes a heavily-updated page's
    differential exceed one page and trigger PDL_Writing's Case 3 (the
    sawtooth of the paper's footnote 16).
    """
    if len(base) != len(new):
        raise ValueError(
            f"page images differ in size: {len(base)} vs {len(new)} bytes"
        )
    if unit <= 0:
        raise ValueError("unit must be positive")
    if base == new:
        return ()
    a = np.frombuffer(base, dtype=np.uint8)
    b = np.frombuffer(new, dtype=np.uint8)
    n_full = len(base) // unit
    changed_units: List[int] = []
    if n_full:
        full_a = a[: n_full * unit].reshape(n_full, unit)
        full_b = b[: n_full * unit].reshape(n_full, unit)
        changed_units = np.flatnonzero((full_a != full_b).any(axis=1)).tolist()
    runs = [
        ChangeRun(i * unit, new[i * unit : (i + 1) * unit]) for i in changed_units
    ]
    tail_start = n_full * unit
    if tail_start < len(base) and base[tail_start:] != new[tail_start:]:
        runs.append(ChangeRun(tail_start, new[tail_start:]))
    return tuple(runs)


@dataclass(frozen=True)
class Differential:
    """The differential of one logical page (Section 4.2).

    ``timestamp`` is the creation time stamp recovery uses to identify the
    most recent differential among surviving copies.
    """

    pid: int
    timestamp: int
    runs: Tuple[ChangeRun, ...]

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_pages(
        cls,
        pid: int,
        timestamp: int,
        base: bytes,
        new: bytes,
        coalesce_gap: int = DEFAULT_COALESCE_GAP,
        unit: Optional[int] = DEFAULT_DIFF_UNIT,
    ) -> "Differential":
        """Create the differential between a base page and its new image.

        With ``unit`` set (the default), the unit-granular encoder is used;
        ``unit=None`` selects byte-wise maximal runs with gap coalescing
        (the ablation configuration).
        """
        if unit is not None:
            runs = compute_unit_runs(base, new, unit)
        else:
            runs = compute_runs(base, new, coalesce_gap)
        return cls(pid=pid, timestamp=timestamp, runs=runs)

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Encoded size in bytes, metadata included — the quantity compared
        against Max_Differential_Size in PDL_Writing's three cases."""
        return ENTRY_HEADER_SIZE + sum(
            RUN_HEADER_SIZE + len(run.data) for run in self.runs
        )

    @property
    def data_len(self) -> int:
        return sum(len(run.data) for run in self.runs)

    @property
    def is_empty(self) -> bool:
        return not self.runs

    # ------------------------------------------------------------------
    # Application
    # ------------------------------------------------------------------
    def apply(self, base: bytes) -> bytes:
        """Merge this differential with its base page (PDL_Reading Step 3)."""
        if not self.runs:
            return base
        image = bytearray(base)
        for run in self.runs:
            if run.end > len(image):
                raise DifferentialError(
                    f"run [{run.offset}, {run.end}) outside page of {len(image)} bytes"
                )
            image[run.offset : run.end] = run.data
        return bytes(image)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def encode(self) -> bytes:
        parts = [
            _ENTRY_HEADER.pack(self.pid, self.timestamp, len(self.runs), self.data_len)
        ]
        for run in self.runs:
            parts.append(_RUN_HEADER.pack(run.offset, len(run.data)))
        for run in self.runs:
            parts.append(run.data)
        return b"".join(parts)

    @classmethod
    def decode_from(cls, buf: bytes, pos: int) -> Tuple["Differential", int]:
        """Decode one entry starting at ``pos``; returns it and the new pos."""
        if pos + ENTRY_HEADER_SIZE > len(buf):
            raise DifferentialError("truncated differential entry header")
        pid, timestamp, n_runs, data_len = _ENTRY_HEADER.unpack_from(buf, pos)
        pos += ENTRY_HEADER_SIZE
        headers: List[Tuple[int, int]] = []
        for _ in range(n_runs):
            if pos + RUN_HEADER_SIZE > len(buf):
                raise DifferentialError("truncated differential run header")
            offset, length = _RUN_HEADER.unpack_from(buf, pos)
            pos += RUN_HEADER_SIZE
            headers.append((offset, length))
        runs: List[ChangeRun] = []
        for offset, length in headers:
            if pos + length > len(buf):
                raise DifferentialError("truncated differential run data")
            runs.append(ChangeRun(offset, bytes(buf[pos : pos + length])))
            pos += length
        diff = cls(pid=pid, timestamp=timestamp, runs=tuple(runs))
        if diff.data_len != data_len:
            raise DifferentialError(
                f"differential for pid {pid} declares {data_len} data bytes "
                f"but carries {diff.data_len}"
            )
        return diff, pos


# ----------------------------------------------------------------------
# Differential page codec
# ----------------------------------------------------------------------

def encode_differential_page(
    diffs: Sequence[Differential], page_data_size: int
) -> bytes:
    """Pack differentials into one differential-page data area."""
    parts = [_PAGE_HEADER.pack(DIFF_PAGE_MAGIC, len(diffs))]
    total = PAGE_HEADER_SIZE
    for diff in diffs:
        encoded = diff.encode()
        total += len(encoded)
        parts.append(encoded)
    if total > page_data_size:
        raise DifferentialError(
            f"{len(diffs)} differentials need {total} bytes; page holds "
            f"{page_data_size}"
        )
    return b"".join(parts)


def decode_differential_page(data: bytes) -> List[Differential]:
    """Parse a differential page's data area into its entries."""
    if len(data) < PAGE_HEADER_SIZE:
        raise DifferentialError("differential page smaller than its header")
    magic, count = _PAGE_HEADER.unpack_from(data, 0)
    if magic != DIFF_PAGE_MAGIC:
        raise DifferentialError(
            f"not a differential page (magic 0x{magic:04X})"
        )
    diffs: List[Differential] = []
    pos = PAGE_HEADER_SIZE
    for _ in range(count):
        diff, pos = Differential.decode_from(data, pos)
        diffs.append(diff)
    return diffs


def find_differential(data: bytes, pid: int) -> Optional[Differential]:
    """Locate ``pid``'s entry in a differential page (PDL_Reading Step 2)."""
    for diff in decode_differential_page(data):
        if diff.pid == pid:
            return diff
    return None
