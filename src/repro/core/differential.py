"""The page-differential: computation, serialization, and merging.

The paper defines the *differential* of a logical page as the difference
between the original (base) page in flash and the up-to-date page in
memory (Section 4.1).  Unlike a log-based method's update-log history, a
differential stores each changed region once — the paper's
``aaaaaa → bbbbba → bcccba`` example yields the single region ``bcccb``
rather than the two logs ``bbbbb`` and ``ccc``.

Wire format (Section 4.2 gives the logical structure
``<pid, timestamp, [offset, length, changed data]+>``; the concrete byte
layout is ours, little-endian)::

    entry  := u32 pid | u64 timestamp | u16 n_runs | u16 data_len
              | n_runs × (u16 offset, u16 length) | run data…
    page   := u16 magic 0xD1FF | u16 count | count × entry

``data_len`` is redundant (the sum of run lengths) and validates decoding.
The differential's *size* — what Max_Differential_Size compares against —
is its full encoded length including all metadata, which is why a heavily
updated page can exceed one page and trigger the paper's Case 3.

Diffing is numpy-accelerated; changed regions separated by fewer
unchanged bytes than a run header costs are coalesced (configurable
``coalesce_gap``), trading a few unchanged bytes for less metadata.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from functools import cached_property
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..ftl.base import ChangeRun

_ENTRY_HEADER = struct.Struct("<IQHH")
_RUN_HEADER = struct.Struct("<HH")
_PAGE_HEADER = struct.Struct("<HH")

ENTRY_HEADER_SIZE = _ENTRY_HEADER.size  # 16 bytes
RUN_HEADER_SIZE = _RUN_HEADER.size  # 4 bytes
PAGE_HEADER_SIZE = _PAGE_HEADER.size  # 4 bytes

#: Magic tag of a differential page's data area.
DIFF_PAGE_MAGIC = 0xD1FF

#: Default coalescing distance: merging two runs separated by a gap of up
#: to one run header's worth of unchanged bytes never grows the encoding.
DEFAULT_COALESCE_GAP = RUN_HEADER_SIZE

#: Default comparison granularity for PDL differentials.  The paper's
#: differential "contains not only the changed data but also the meta
#: data such as offsets and lengths", and footnote 16 observes the
#: differential growing from 0 to one page and resetting through Case 3,
#: averaging about half a page.  That sawtooth requires the encoded size
#: to exceed one page *before* literally every byte has changed — i.e. a
#: unit-granular encoder that emits one entry per changed unit.  16 bytes
#: reproduces the paper's steady state; see DESIGN.md.
DEFAULT_DIFF_UNIT = 16


class DifferentialError(ValueError):
    """Raised when encoded differential data cannot be decoded."""


_RUN_HEADER_STRUCTS: Dict[int, struct.Struct] = {}


def _run_header_struct(n_runs: int) -> struct.Struct:
    """A cached ``Struct`` packing ``n_runs`` (offset, length) pairs."""
    cached = _RUN_HEADER_STRUCTS.get(n_runs)
    if cached is None:
        cached = _RUN_HEADER_STRUCTS[n_runs] = struct.Struct(f"<{2 * n_runs}H")
    return cached


def compute_runs(
    base: bytes, new: bytes, coalesce_gap: int = DEFAULT_COALESCE_GAP
) -> Tuple[ChangeRun, ...]:
    """Byte-wise difference of two equal-length pages as change runs.

    Returns maximal runs of changed bytes; runs whose separating gap of
    unchanged bytes is at most ``coalesce_gap`` are merged (the merged run
    then carries those unchanged bytes, which is harmless on apply).
    """
    if len(base) != len(new):
        raise ValueError(
            f"page images differ in size: {len(base)} vs {len(new)} bytes"
        )
    if base == new:
        return ()
    a = np.frombuffer(base, dtype=np.uint8)
    b = np.frombuffer(new, dtype=np.uint8)
    changed = np.flatnonzero(a != b)
    # Consecutive changed offsets whose distance exceeds gap+1 start a new run.
    splits = np.flatnonzero(np.diff(changed) > coalesce_gap + 1)
    starts = np.concatenate(([0], splits + 1))
    ends = np.concatenate((splits, [len(changed) - 1]))
    return tuple(
        ChangeRun(int(changed[s]), new[int(changed[s]) : int(changed[e]) + 1])
        for s, e in zip(starts, ends)
    )


def compute_unit_runs(base: bytes, new: bytes, unit: int = DEFAULT_DIFF_UNIT) -> Tuple[ChangeRun, ...]:
    """Unit-granular difference: one run per changed ``unit``-byte chunk.

    Pages are compared in fixed-size units; every unit containing at
    least one changed byte is emitted as its own run carrying the unit's
    full new contents.  Adjacent changed units are deliberately *not*
    coalesced — per-unit entries keep the metadata overhead proportional
    to coverage, which is what makes a heavily-updated page's
    differential exceed one page and trigger PDL_Writing's Case 3 (the
    sawtooth of the paper's footnote 16).
    """
    if len(base) != len(new):
        raise ValueError(
            f"page images differ in size: {len(base)} vs {len(new)} bytes"
        )
    if unit <= 0:
        raise ValueError("unit must be positive")
    if base == new:
        return ()
    n_full = len(base) // unit
    changed_units: List[int] = []
    if n_full:
        if unit % 8 == 0:
            # Compare 8 bytes per element: same answer, an eighth of the
            # elements numpy has to touch on every page diff.
            words = unit // 8
            full_a = np.frombuffer(base, dtype="<u8", count=n_full * words)
            full_b = np.frombuffer(new, dtype="<u8", count=n_full * words)
        else:
            words = unit
            full_a = np.frombuffer(base, dtype=np.uint8, count=n_full * unit)
            full_b = np.frombuffer(new, dtype=np.uint8, count=n_full * unit)
        full_a = full_a.reshape(n_full, words)
        full_b = full_b.reshape(n_full, words)
        changed_units = np.flatnonzero((full_a != full_b).any(axis=1)).tolist()
    runs = [
        ChangeRun(i * unit, new[i * unit : (i + 1) * unit]) for i in changed_units
    ]
    tail_start = n_full * unit
    if tail_start < len(base) and base[tail_start:] != new[tail_start:]:
        runs.append(ChangeRun(tail_start, new[tail_start:]))
    return tuple(runs)


@dataclass(frozen=True)
class Differential:
    """The differential of one logical page (Section 4.2).

    ``timestamp`` is the creation time stamp recovery uses to identify the
    most recent differential among surviving copies.
    """

    pid: int
    timestamp: int
    runs: Tuple[ChangeRun, ...]

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_pages(
        cls,
        pid: int,
        timestamp: int,
        base: bytes,
        new: bytes,
        coalesce_gap: int = DEFAULT_COALESCE_GAP,
        unit: Optional[int] = DEFAULT_DIFF_UNIT,
    ) -> "Differential":
        """Create the differential between a base page and its new image.

        With ``unit`` set (the default), the unit-granular encoder is used;
        ``unit=None`` selects byte-wise maximal runs with gap coalescing
        (the ablation configuration).
        """
        if unit is not None:
            runs = compute_unit_runs(base, new, unit)
        else:
            runs = compute_runs(base, new, coalesce_gap)
        return cls(pid=pid, timestamp=timestamp, runs=runs)

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    # ``runs`` is immutable, so both derived sizes are computed once and
    # cached — PDL_Writing's case analysis and the write buffer's space
    # accounting consult ``size`` several times per differential.
    @cached_property
    def size(self) -> int:
        """Encoded size in bytes, metadata included — the quantity compared
        against Max_Differential_Size in PDL_Writing's three cases."""
        return ENTRY_HEADER_SIZE + RUN_HEADER_SIZE * len(self.runs) + self.data_len

    @cached_property
    def data_len(self) -> int:
        return sum(len(run.data) for run in self.runs)

    @property
    def is_empty(self) -> bool:
        return not self.runs

    # ------------------------------------------------------------------
    # Application
    # ------------------------------------------------------------------
    def apply(self, base: bytes) -> bytes:
        """Merge this differential with its base page (PDL_Reading Step 3)."""
        if not self.runs:
            return base
        image = bytearray(base)
        for run in self.runs:
            if run.end > len(image):
                raise DifferentialError(
                    f"run [{run.offset}, {run.end}) outside page of {len(image)} bytes"
                )
            image[run.offset : run.end] = run.data
        return bytes(image)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def encode(self) -> bytes:
        runs = self.runs
        header = _ENTRY_HEADER.pack(self.pid, self.timestamp, len(runs), self.data_len)
        if not runs:
            return header
        flat: List[int] = []
        for run in runs:
            flat.append(run.offset)
            flat.append(len(run.data))
        # All run headers in one struct call instead of one pack per run.
        run_headers = _run_header_struct(len(runs)).pack(*flat)
        return b"".join([header, run_headers, *(run.data for run in runs)])

    @classmethod
    def decode_from(cls, buf: bytes, pos: int) -> Tuple["Differential", int]:
        """Decode one entry starting at ``pos``; returns it and the new pos."""
        if pos + ENTRY_HEADER_SIZE > len(buf):
            raise DifferentialError("truncated differential entry header")
        pid, timestamp, n_runs, data_len = _ENTRY_HEADER.unpack_from(buf, pos)
        pos += ENTRY_HEADER_SIZE
        if pos + RUN_HEADER_SIZE * n_runs > len(buf):
            raise DifferentialError("truncated differential run header")
        # All run headers in one struct call (mirrors encode()).
        flat = _run_header_struct(n_runs).unpack_from(buf, pos)
        pos += RUN_HEADER_SIZE * n_runs
        runs: List[ChangeRun] = []
        carried = 0
        for i in range(n_runs):
            offset = flat[2 * i]
            length = flat[2 * i + 1]
            if pos + length > len(buf):
                raise DifferentialError("truncated differential run data")
            runs.append(ChangeRun(offset, bytes(buf[pos : pos + length])))
            carried += length
            pos += length
        if carried != data_len:
            raise DifferentialError(
                f"differential for pid {pid} declares {data_len} data bytes "
                f"but carries {carried}"
            )
        return cls(pid=pid, timestamp=timestamp, runs=tuple(runs)), pos


# ----------------------------------------------------------------------
# Differential page codec
# ----------------------------------------------------------------------

def encode_differential_page(
    diffs: Sequence[Differential], page_data_size: int
) -> bytes:
    """Pack differentials into one differential-page data area."""
    parts = [_PAGE_HEADER.pack(DIFF_PAGE_MAGIC, len(diffs))]
    total = PAGE_HEADER_SIZE
    for diff in diffs:
        encoded = diff.encode()
        total += len(encoded)
        parts.append(encoded)
    if total > page_data_size:
        raise DifferentialError(
            f"{len(diffs)} differentials need {total} bytes; page holds "
            f"{page_data_size}"
        )
    return b"".join(parts)


def decode_differential_page(data: bytes) -> List[Differential]:
    """Parse a differential page's data area into its entries."""
    if len(data) < PAGE_HEADER_SIZE:
        raise DifferentialError("differential page smaller than its header")
    magic, count = _PAGE_HEADER.unpack_from(data, 0)
    if magic != DIFF_PAGE_MAGIC:
        raise DifferentialError(
            f"not a differential page (magic 0x{magic:04X})"
        )
    diffs: List[Differential] = []
    pos = PAGE_HEADER_SIZE
    for _ in range(count):
        diff, pos = Differential.decode_from(data, pos)
        diffs.append(diff)
    return diffs


def find_differential(data: bytes, pid: int) -> Optional[Differential]:
    """Locate ``pid``'s entry in a differential page (PDL_Reading Step 2).

    The read path's hot lookup: entry headers carry ``n_runs`` and
    ``data_len``, so every non-matching entry is skipped in O(1) without
    materializing its runs — only the matching entry (if any) is decoded
    in full.  Structural damage along the skip path (truncated headers,
    entries running off the page) still raises
    :class:`DifferentialError` exactly as a full decode would.
    """
    if len(data) < PAGE_HEADER_SIZE:
        raise DifferentialError("differential page smaller than its header")
    magic, count = _PAGE_HEADER.unpack_from(data, 0)
    if magic != DIFF_PAGE_MAGIC:
        raise DifferentialError(
            f"not a differential page (magic 0x{magic:04X})"
        )
    size = len(data)
    pos = PAGE_HEADER_SIZE
    for _ in range(count):
        if pos + ENTRY_HEADER_SIZE > size:
            raise DifferentialError("truncated differential entry header")
        entry_pid, _ts, n_runs, data_len = _ENTRY_HEADER.unpack_from(data, pos)
        if entry_pid == pid:
            diff, _pos = Differential.decode_from(data, pos)
            return diff
        pos += ENTRY_HEADER_SIZE + RUN_HEADER_SIZE * n_runs + data_len
        if pos > size:
            raise DifferentialError("truncated differential run data")
    return None
