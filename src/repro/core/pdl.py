"""PDL — the page-differential logging driver (Section 4).

A logical page is stored as a *base page* plus at most one current
*differential*; differentials of many pages share differential pages via
the one-page write buffer.  The driver implements:

* **PDL_Writing** (Figure 7): read the base page, compute the
  differential, then Case 1 (fits in the buffer), Case 2 (flush the
  buffer first), or Case 3 (differential exceeds Max_Differential_Size —
  discard it and write the page as a fresh base, degenerating to the
  page-based method for that reflection);
* **PDL_Reading** (Figure 9): base page + differential from the write
  buffer or the differential page, at most two flash reads;
* garbage collection with differential-page *compaction* (Section 4.1):
  relocated differential pages carry only their still-valid entries, and
  the compaction buffer is flushed before each victim erase so every
  valid byte always exists somewhere in flash (crash-safe GC);
* the write-through ``flush`` of Section 4.5.

Timestamps are driver-issued monotonic counters persisted in spare areas
and differential entries; GC copies preserve them (copies are identical,
so recovery may keep either), while every new base page or differential
gets a fresh, strictly larger stamp.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List, Optional, Tuple

from ..flash.chip import FlashChip
from ..flash.spare import PageType, SpareArea
from ..flash.stats import READ_STEP, WRITE_STEP
from ..ftl.allocator import COLD_STREAM, HOT_STREAM, BlockManager
from ..ftl.base import ChangeRun, PageUpdateMethod
from ..ftl.errors import UnknownPageError
from ..ftl.gc import GarbageCollector, GcConfig, VictimPolicy
from .differential import (
    DEFAULT_COALESCE_GAP,
    DEFAULT_DIFF_UNIT,
    PAGE_HEADER_SIZE,
    Differential,
    decode_differential_page,
    encode_differential_page,
    find_differential,
)
from .mapping import JournaledVdct, MappingConfig, TieredMappingTable
from .tables import MappingEntry, PhysicalPageMappingTable, ValidDifferentialCountTable
from .write_buffer import DifferentialWriteBuffer

if TYPE_CHECKING:
    from ..ext.journal import MappingStore
    from .fsck import FsckReport


def format_size(n_bytes: int) -> str:
    """Format Max_Differential_Size the way the paper labels methods."""
    if n_bytes % 1024 == 0:
        return f"{n_bytes // 1024}KB"
    return f"{n_bytes}B"


class PdlDriver(PageUpdateMethod):
    """Page-differential logging with Max_Differential_Size = ``x``."""

    tightly_coupled = False

    def __init__(
        self,
        chip: FlashChip,
        max_differential_size: int = 256,
        diff_unit: "int | None" = DEFAULT_DIFF_UNIT,
        coalesce_gap: int = DEFAULT_COALESCE_GAP,
        reserve_blocks: int = 2,
        victim_policy: Optional[VictimPolicy] = None,
        checkpoint_region_blocks: int = 0,
        gc_config: Optional[GcConfig] = None,
        mapping: Optional[MappingConfig] = None,
    ) -> None:
        super().__init__(chip)
        if max_differential_size <= 0:
            raise ValueError("max_differential_size must be positive")
        self.name = f"PDL ({format_size(max_differential_size)})"
        self.max_differential_size = max_differential_size
        self.diff_unit = diff_unit
        self.coalesce_gap = coalesce_gap
        self.checkpoint_region_blocks = checkpoint_region_blocks
        self.gc_config = gc_config if gc_config is not None else GcConfig()
        if victim_policy is None and self.gc_config.policy != "greedy":
            self.name += f" gc={self.gc_config.policy}"
        #: Journal/snapshot store of the tiered mapping table, or None
        #: when the classic all-RAM tables are in use.
        self.mapping: "Optional[MappingStore]" = None
        mapping_region = 0
        if mapping is not None:
            # Local import: the ext layer imports this module at top level.
            from ..ext.journal import MappingStore

            self.mapping = MappingStore(
                chip, mapping, base_block=checkpoint_region_blocks
            )
            mapping_region = mapping.region_blocks
        self.blocks = BlockManager(
            chip,
            reserve_blocks=reserve_blocks,
            exclude_blocks=checkpoint_region_blocks + mapping_region,
        )
        self.gc = GarbageCollector(
            chip, self.blocks, handler=self, policy=victim_policy,
            config=self.gc_config,
        )
        # Hot/cold separation: differential pages churn (hot) while base
        # pages persist (cold); giving each its own active block keeps
        # victims garbage-dense and cuts compaction's relocation volume.
        self._base_stream = COLD_STREAM
        self._diff_stream = HOT_STREAM if self.gc_config.hot_cold else COLD_STREAM
        self.ppmt: "PhysicalPageMappingTable | TieredMappingTable"
        self.vdct: ValidDifferentialCountTable
        if self.mapping is not None:
            assert mapping is not None
            self.ppmt = TieredMappingTable(
                self.mapping,
                cache_entries=mapping.cache_entries,
                cache_policy=mapping.cache_policy,
            )
            self.vdct = JournaledVdct(self.mapping)
            self.mapping.bind(self)
            # Journal the open *before* the block's first program can
            # land: after a crash the tail scan visits exactly the
            # journaled open blocks plus the snapshot's active ones.
            self.blocks.on_block_open = self.mapping.note_block_open
        else:
            self.ppmt = PhysicalPageMappingTable()
            self.vdct = ValidDifferentialCountTable()
        buffer_capacity = self.page_size - PAGE_HEADER_SIZE
        self.buffer = DifferentialWriteBuffer(buffer_capacity)
        # A differential larger than the buffer can never be staged, so the
        # effective threshold is capped at the buffer capacity; with
        # Max_Differential_Size = one page this makes a fully-changed page
        # take Case 3 exactly as the paper describes.
        self.effective_max = min(max_differential_size, buffer_capacity)
        self._gc_buffer = DifferentialWriteBuffer(buffer_capacity)
        #: Differential pages of the in-flight GC victim whose vdct rows
        #: were dropped wholesale at relocation time.  With incremental
        #: GC, ordinary writes run between relocation and the victim's
        #: erase; a write superseding one of those differentials must not
        #: decrement the (already removed) count again.
        self._gc_victim_diffs: set = set()
        self._ts = 0
        # Counters for experiments and tests (Case 1/2/3 frequencies).
        self.case_counts = {1: 0, 2: 0, 3: 0}
        self.buffer_flushes = 0

    # ------------------------------------------------------------------
    # Timestamping
    # ------------------------------------------------------------------
    def _next_ts(self) -> int:
        self._ts += 1
        return self._ts

    @property
    def current_ts(self) -> int:
        return self._ts

    def resume_ts(self, last_seen: int) -> None:
        """Continue the timestamp sequence after recovery."""
        self._ts = max(self._ts, last_seen)

    # ------------------------------------------------------------------
    # Mapping-tier pacing
    # ------------------------------------------------------------------
    def _mapping_tick(self, force: bool = False) -> None:
        """Driver safe point: let the mapping store group-commit its
        journal and take a due snapshot.  Called after each top-level
        mutating entry point, outside every accounting phase and with no
        GC victim in flight mid-step state to capture."""
        if self.mapping is not None:
            self.mapping.tick(force=force)

    # ------------------------------------------------------------------
    # PageUpdateMethod: load / read / write / flush
    # ------------------------------------------------------------------
    def load_page(self, pid: int, data: bytes) -> None:
        self._check_page(pid, data)
        if pid in self.ppmt:
            raise ValueError(f"logical page {pid} already loaded")
        with self.stats.phase("load"):
            ts = self._next_ts()
            addr = self.blocks.allocate(stream=self._base_stream)
            spare = SpareArea(type=PageType.BASE, pid=pid, timestamp=ts)
            self.chip.program_page(addr, data, spare)
            self.blocks.note_valid(addr)
            self.ppmt.set_base(pid, addr, ts)
        self._mapping_tick()

    def read_page(self, pid: int) -> bytes:
        """PDL_Reading (Figure 9): at most two flash reads."""
        entry = self._entry_of(pid)
        with self.stats.phase(READ_STEP):
            base, _spare = self.chip.read_page(entry.base_addr)
            # Step 2: the write buffer is consulted before flash.
            diff = self.buffer.get(pid)
            if diff is None and entry.diff_addr is not None:
                diff_page, _ = self.chip.read_page(entry.diff_addr)
                diff = find_differential(diff_page, pid)
                if diff is None:
                    raise UnknownPageError(
                        f"differential page {entry.diff_addr} lacks an entry "
                        f"for pid {pid}: ppmt/vdct corruption"
                    )
            return diff.apply(base) if diff is not None else base

    def write_page(
        self, pid: int, data: bytes, update_logs: Optional[List[ChangeRun]] = None
    ) -> None:
        """PDL_Writing (Figure 7).

        ``update_logs`` is accepted and ignored: PDL computes the
        differential itself by re-reading the base page, which is what
        makes it DBMS-independent.
        """
        self._check_page(pid, data)
        with self.stats.phase(WRITE_STEP):
            self.gc.on_write_begin()
            try:
                # Mapping lookups run after the incremental GC step:
                # relocation may have just moved this page's base.
                entry = self.ppmt.get(pid)
                if entry is None:
                    # First write of an unloaded page: a fresh base.
                    self._program_base(pid, data)
                    return
                # Step 1: read the base page.
                base, _spare = self.chip.read_page(entry.base_addr)
                self._reflect(pid, data, base)
            finally:
                self.gc.on_write_end()
        self._mapping_tick()

    def _reflect(self, pid: int, data: bytes, base: bytes) -> None:
        """Steps 2–3 of PDL_Writing, given the (pre-read) base image."""
        entry = self.ppmt.require(pid)
        # Step 2: create the differential by comparison.
        diff = Differential.from_pages(
            pid,
            self._next_ts(),
            base,
            data,
            coalesce_gap=self.coalesce_gap,
            unit=self.diff_unit,
        )
        if diff.is_empty and entry.diff_addr is None and pid not in self.buffer:
            # The page matches its base exactly and no stale differential
            # exists anywhere: a pure no-op reflection.  When a stale
            # differential *does* exist, the empty differential flows
            # through the normal cases below — its fresh timestamp
            # supersedes the stale one both at runtime and in recovery.
            return
        # Step 3: three cases by differential size.
        if diff.size > self.effective_max:
            self.case_counts[3] += 1
            self._write_new_base(pid, data)
        else:
            self.buffer.remove(pid)
            if diff.size > self.buffer.free_space:
                self.case_counts[2] += 1
                self._flush_buffer()
            else:
                self.case_counts[1] += 1
            self.buffer.put(diff)

    def flush(self) -> None:
        """Write-through (Section 4.5): force the write buffer to flash."""
        with self.stats.phase(WRITE_STEP):
            # A flush is a write-path entry point: it paces incremental
            # steps and meters any GC it absorbs (its buffer-flush
            # allocation can invoke the backstop) as a stall sample, so
            # the stall histogram misses no collection on the write path.
            self.gc.on_write_begin()
            try:
                self._flush_buffer()
            finally:
                self.gc.on_write_end()
        self._mapping_tick(force=True)

    def end_of_load(self) -> None:
        """Initial bulk load finished: force the mapping journal down so
        the freshly loaded table is durable before the workload starts."""
        self._mapping_tick(force=True)

    def fsck(self, repair: bool = True) -> "FsckReport":
        """Scan for single-page corruption and repair it online.

        Returns a :class:`repro.core.fsck.FsckReport`; see that module
        for the detection sweep and the per-page repair decision tree.
        """
        from .fsck import fsck_driver  # local import: fsck imports this module

        return fsck_driver(self, repair=repair)

    # ------------------------------------------------------------------
    # Batched entry points
    # ------------------------------------------------------------------
    def load_pages(self, pages: Iterable[Tuple[int, bytes]]) -> None:
        """Bulk-load many pages via batched chip programs.

        Charges are identical to looping :meth:`load_page`; batches are
        bounded by the active block so the allocator can only trigger GC
        while nothing is staged (a staged-but-unprogrammed page must
        never be visible to GC as valid).
        """
        with self.stats.phase("load"):
            staged: List[tuple] = []  # (addr, data, spare, pid, ts)
            staged_pids = set()

            def commit() -> None:
                if not staged:
                    return
                self.chip.program_pages([(a, d, s) for a, d, s, _p, _t in staged])
                for addr, _d, _s, pid, ts in staged:
                    self.blocks.note_valid(addr)
                    self.ppmt.set_base(pid, addr, ts)
                staged.clear()
                staged_pids.clear()

            for pid, data in pages:
                self._check_page(pid, data)
                if pid in self.ppmt or pid in staged_pids:
                    commit()
                    raise ValueError(f"logical page {pid} already loaded")
                if self.blocks.pages_left(self._base_stream) == 0:
                    commit()
                ts = self._next_ts()
                addr = self.blocks.allocate(stream=self._base_stream)
                spare = SpareArea(type=PageType.BASE, pid=pid, timestamp=ts)
                staged.append((addr, data, spare, pid, ts))
                staged_pids.add(pid)
            commit()
        self._mapping_tick()

    def write_pages(
        self,
        pages: Iterable[Tuple[int, bytes]],
        update_logs: Optional[List[ChangeRun]] = None,
    ) -> None:
        """Reflect many pages, batching the base-page re-reads.

        PDL_Writing's step 1 re-reads every target's base page; a
        buffer-pool flush of N pages turns those N reads into one
        batched chip call, then runs steps 2–3 sequentially (the write
        buffer's state evolves across the batch).  Base images are
        immutable while mapped — GC relocations copy them bit-identically
        — so prefetching them up front cannot read stale data.
        ``update_logs`` is accepted and ignored, as in
        :meth:`write_page`.
        """
        pages = list(pages)
        pids = [pid for pid, _ in pages]
        if len(set(pids)) != len(pids):
            # Duplicate pids must observe each other's effects in order;
            # fall back to the sequential path.
            super().write_pages(pages, update_logs)
            return
        for pid, data in pages:
            self._check_page(pid, data)
        with self.stats.phase(WRITE_STEP):
            entries = [(pid, self.ppmt.get(pid)) for pid, _ in pages]
            mapped = [
                (pid, entry.base_addr) for pid, entry in entries if entry is not None
            ]
            bases = {}
            if mapped:
                images = self.chip.read_pages([addr for _, addr in mapped])
                bases = {
                    pid: data for (pid, _), (data, _spare) in zip(mapped, images)
                }
            for pid, data in pages:
                self.gc.on_write_begin()
                try:
                    if pid not in bases:
                        self._program_base(pid, data)
                    else:
                        self._reflect(pid, data, bases[pid])
                finally:
                    self.gc.on_write_end()
        self._mapping_tick()

    # ------------------------------------------------------------------
    # Writing paths
    # ------------------------------------------------------------------
    def _program_base(self, pid: int, data: bytes) -> None:
        ts = self._next_ts()
        addr = self.blocks.allocate(stream=self._base_stream)
        self.chip.program_page(
            addr, data, SpareArea(type=PageType.BASE, pid=pid, timestamp=ts)
        )
        self.blocks.note_valid(addr)
        self.ppmt.set_base(pid, addr, ts)

    def _write_new_base(self, pid: int, data: bytes) -> None:
        """writingNewBasePage (Figure 8): Case 3.

        The allocation happens before the superseded addresses are read:
        it may trigger GC, which can relocate this page's base page or
        differential page, and the obsolete marks must hit the live
        copies.
        """
        ts = self._next_ts()
        addr = self.blocks.allocate(stream=self._base_stream)
        entry = self.ppmt.require(pid)
        old_base = entry.base_addr
        old_diff = entry.diff_addr
        self.chip.program_page(
            addr, data, SpareArea(type=PageType.BASE, pid=pid, timestamp=ts)
        )
        self.blocks.note_valid(addr)
        self.ppmt.set_base(pid, addr, ts)  # also clears entry.diff_addr
        self.chip.mark_obsolete(old_base)
        self.blocks.note_invalid(old_base)
        self.buffer.remove(pid)
        self._gc_buffer.remove(pid)  # a staged compaction copy is now stale
        if old_diff is not None:
            self._drop_diff_ref(old_diff)

    def _flush_buffer(self) -> None:
        """writingDifferentialWriteBuffer (Figure 8)."""
        if self.buffer.is_empty:
            return
        diffs = self.buffer.drain()
        payload = encode_differential_page(diffs, self.page_size)
        addr = self.blocks.allocate(stream=self._diff_stream)
        spare = SpareArea(type=PageType.DIFFERENTIAL, timestamp=self._next_ts())
        self.chip.program_page(addr, payload, spare)
        self.blocks.note_valid(addr)
        self.buffer_flushes += 1
        for diff in diffs:
            entry = self.ppmt.require(diff.pid)
            if entry.diff_addr is not None:
                self._drop_diff_ref(entry.diff_addr)
            self.ppmt.set_diff(diff.pid, addr, diff.timestamp)
            self.vdct.increment(addr)
            # A compaction copy staged from the in-flight GC victim is
            # superseded by this flush; flushing it later would re-point
            # the entry back at stale data.
            self._gc_buffer.remove(diff.pid)

    def _drop_diff_ref(self, addr: int) -> None:
        """decreaseValidDifferentialCount (Figure 8).

        Differential pages of the in-flight GC victim had their count
        rows removed wholesale when compaction picked them up; the page
        dies with the victim's erase, so there is nothing to decrement
        or obsolete here.
        """
        if addr in self._gc_victim_diffs:
            return
        if self.vdct.decrement(addr):
            self.chip.mark_obsolete(addr)
            self.blocks.note_invalid(addr)

    # ------------------------------------------------------------------
    # GC relocation handler (Section 4.1's valid-page moves + compaction)
    # ------------------------------------------------------------------
    def relocate_page(self, addr: int, data: bytes, spare: SpareArea) -> None:
        if spare.type is PageType.BASE:
            pid = spare.pid
            if pid is None or self.ppmt.require(pid).base_addr != addr:
                raise UnknownPageError(f"GC found unmapped valid base page at {addr}")
            new = self.blocks.allocate(for_gc=True, stream=self._base_stream)
            self.chip.program_page(new, data, spare)  # timestamp preserved
            self.blocks.note_valid(new)
            self.ppmt.move_base(pid, new)
        elif spare.type is PageType.DIFFERENTIAL:
            # Compaction: keep only still-valid differentials.  The vdct
            # row is dropped through the plain base class on purpose:
            # the journal must not learn of the drop until every entry
            # has been re-pointed at the compacted copy (finish_victim
            # emits the REC_VDCT_DROP records after the compaction
            # flush, before the erase) — a replayed early drop would
            # retire a differential page the table still references.
            ValidDifferentialCountTable.remove(self.vdct, addr)
            self._gc_victim_diffs.add(addr)
            for diff in decode_differential_page(data):
                entry = self.ppmt.get(diff.pid)
                if entry is None or entry.diff_addr != addr:
                    continue  # superseded entry: garbage
                if diff.size > self._gc_buffer.free_space:
                    self._flush_gc_buffer()
                self._gc_buffer.put(diff)
                # Until the compaction buffer is flushed, the entry keeps
                # pointing at the victim copy, which stays in flash until
                # finish_victim() runs — reads remain consistent.
        else:
            raise UnknownPageError(
                f"GC found page of unexpected type {spare.type!r} at {addr}"
            )

    def finish_victim(self, block: int) -> None:
        """Flush compacted differentials before the victim is erased.

        With the mapping journal enabled this is also a forced group
        commit: the victim's relocation records (MOVE_BASE, the
        compaction SET_DIFFs, and the VDCT_DROPs emitted here) must be
        durable before the erase destroys the old copies — a crash
        after the erase would otherwise replay a table that points into
        the erased block.
        """
        self._flush_gc_buffer()
        if self.mapping is not None:
            from .mapping import REC_VDCT_DROP

            for addr in sorted(self._gc_victim_diffs):
                self.mapping.record(REC_VDCT_DROP, addr)
            self.mapping.commit()
        self._gc_victim_diffs.clear()

    def _flush_gc_buffer(self) -> None:
        if self._gc_buffer.is_empty:
            return
        diffs = self._gc_buffer.drain()
        payload = encode_differential_page(diffs, self.page_size)
        # Generational promotion: a differential that survived a whole
        # collection belongs to a cold page (hot pages' differentials die
        # before GC reaches them), so compacted pages go to the cold
        # stream rather than back among the fast-churning fresh ones.
        addr = self.blocks.allocate(for_gc=True, stream=self._base_stream)
        spare = SpareArea(type=PageType.DIFFERENTIAL, timestamp=self._next_ts())
        self.chip.program_page(addr, payload, spare)
        self.blocks.note_valid(addr)
        for diff in diffs:
            # The old reference was inside the victim block (vdct entry
            # already dropped); just re-point.  GC copies preserve their
            # timestamps, so the entry stamp is unchanged.
            self.ppmt.set_diff(diff.pid, addr, diff.timestamp)
            self.vdct.increment(addr)

    # ------------------------------------------------------------------
    # Internals / introspection
    # ------------------------------------------------------------------
    def _entry_of(self, pid: int) -> MappingEntry:
        entry = self.ppmt.get(pid)
        if entry is None:
            raise UnknownPageError(f"logical page {pid} was never written")
        return entry

    def differential_page_count(self) -> int:
        """Differential pages currently referenced (for space reports)."""
        return len(self.vdct)
