"""ASCII rendering of the regenerated figures.

Terminal-friendly bar and line charts so ``python -m repro.bench`` can
literally draw the paper's figures from a :class:`ResultTable` — no
plotting dependencies, deterministic output, easy to diff in CI.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .reporting import ResultTable

BAR_WIDTH = 48
PLOT_WIDTH = 56
PLOT_HEIGHT = 14


def bar_chart(
    table: ResultTable,
    label_column: str,
    value_column: str,
    title: Optional[str] = None,
    log_scale: bool = False,
) -> str:
    """Render one row per label as a horizontal bar (Figure-12 style)."""
    labels = [str(v) for v in table.column(label_column)]
    values = [float(v) for v in table.column(value_column)]
    if not values:
        return "(empty table)"
    import math

    def transform(v: float) -> float:
        return math.log10(v + 1.0) if log_scale else v

    peak = max(transform(v) for v in values) or 1.0
    width = max(len(label) for label in labels)
    lines = [title or f"{value_column} by {label_column}"]
    for label, value in zip(labels, values):
        filled = int(round(transform(value) / peak * BAR_WIDTH))
        bar = "█" * max(filled, 1 if value > 0 else 0)
        lines.append(f"{label.ljust(width)} | {bar} {value:,.1f}")
    if log_scale:
        lines.append(f"{'':{width}} | (log scale)")
    return "\n".join(lines)


def line_chart(
    table: ResultTable,
    x_column: str,
    y_column: str,
    series_column: str,
    title: Optional[str] = None,
    series_filter: Optional[Sequence[str]] = None,
) -> str:
    """Render multiple (x, y) series as an ASCII scatter/line plot
    (Figure-13/18 style): one marker character per series."""
    markers = "ox+*#@%&"
    series: Dict[str, List[Tuple[float, float]]] = {}
    cols = list(table.columns)
    xi, yi, si = cols.index(x_column), cols.index(y_column), cols.index(series_column)
    for row in table.rows:
        name = str(row[si])
        if series_filter is not None and name not in series_filter:
            continue
        series.setdefault(name, []).append((float(row[xi]), float(row[yi])))
    if not series:
        return "(no series)"
    xs = [x for pts in series.values() for x, _ in pts]
    ys = [y for pts in series.values() for _, y in pts]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * PLOT_WIDTH for _ in range(PLOT_HEIGHT)]
    legend = []
    for idx, (name, pts) in enumerate(series.items()):
        marker = markers[idx % len(markers)]
        legend.append(f"{marker}={name}")
        for x, y in pts:
            col = int((x - x_lo) / x_span * (PLOT_WIDTH - 1))
            row_idx = PLOT_HEIGHT - 1 - int((y - y_lo) / y_span * (PLOT_HEIGHT - 1))
            grid[row_idx][col] = marker
    lines = [title or f"{y_column} vs {x_column}"]
    lines.append(f"{y_hi:>12,.0f} ┐")
    for row_cells in grid:
        lines.append(" " * 12 + " │" + "".join(row_cells))
    lines.append(f"{y_lo:>12,.0f} ┘" + "─" * PLOT_WIDTH)
    lines.append(" " * 14 + f"{x_lo:<12,.3g}{'':^{PLOT_WIDTH - 24}}{x_hi:>12,.3g}")
    lines.append(" " * 14 + f"({x_column})   " + "  ".join(legend))
    return "\n".join(lines)


def render_figure(table: ResultTable) -> str:
    """Best-effort automatic figure for a known experiment table."""
    exp = table.experiment
    if exp.startswith("exp1"):
        return bar_chart(table, "method", "overall_us",
                         "Figure 12(c): overall time per update operation (us)",
                         log_scale=True)
    if exp.startswith("exp2"):
        return line_chart(table, "n_updates", "overall_us", "method",
                          "Figure 13: overall time vs N_updates_till_write")
    if exp.startswith("exp3"):
        return line_chart(table, "pct_changed", "overall_us", "method",
                          "Figure 14: overall time vs %ChangedByOneU_Op")
    if exp.startswith("exp4"):
        return line_chart(table, "pct_update", "overall_us", "method",
                          "Figure 15: time per op vs %UpdateOps")
    if exp.startswith("exp5"):
        return line_chart(table, "t_read_us", "overall_us", "method",
                          "Figure 16: overall time vs Tread")
    if exp.startswith("exp6"):
        return line_chart(table, "n_updates", "erases_per_op", "method",
                          "Figure 17: erases per update vs N_updates_till_write")
    if exp.startswith("exp7"):
        return line_chart(table, "buffer_fraction", "io_us_per_txn", "method",
                          "Figure 18: TPC-C I/O per transaction vs buffer size")
    return table.render()
