"""Experiment orchestrators: one function per table/figure in the paper.

Every function returns a :class:`ResultTable` whose rows are the series
the corresponding figure plots.  Absolute microseconds differ from the
paper (different chip scale, same Table-1 latencies); the *shapes* —
orderings, crossovers, trends — are the reproduction targets recorded in
EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..flash.spec import BENCH_SPEC_8K, SAMSUNG_K9L8G08U0M
from ..methods import method_labels
from ..workloads.runner import RunnerConfig, measure_mix, measure_updates
from ..workloads.tpcc.driver import run_tpcc
from .config import BenchScale, current_scale
from .reporting import ResultTable

#: Sweep points used by the experiments (the paper's parameter ranges).
N_UPDATES_SWEEP = (1, 2, 3, 4, 5, 6, 7, 8)
PCT_CHANGED_SWEEP = (0.1, 0.5, 2.0, 10.0, 50.0, 100.0)
PCT_UPDATE_SWEEP = (0.0, 20.0, 40.0, 60.0, 80.0, 100.0)
TREAD_SWEEP = (10.0, 110.0, 500.0, 1000.0, 1500.0)
TWRITE_POINTS = (500.0, 1000.0)
BUFFER_FRACTIONS = (0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1)


# ----------------------------------------------------------------------
# Table 1
# ----------------------------------------------------------------------

def table1_chip_parameters() -> ResultTable:
    """Table 1: the emulated chip's parameters."""
    spec = SAMSUNG_K9L8G08U0M
    table = ResultTable(
        experiment="table1_chip",
        title="Table 1: flash memory parameters (Samsung K9L8G08U0M model)",
        columns=("symbol", "definition", "value"),
    )
    table.add_row("Nblock", "number of blocks", spec.n_blocks)
    table.add_row("Npage", "pages per block", spec.pages_per_block)
    table.add_row("Sblock", "block size (bytes)", spec.block_size)
    table.add_row("Spage", "page size (bytes)", spec.page_size)
    table.add_row("Sdata", "data area (bytes)", spec.page_data_size)
    table.add_row("Sspare", "spare area (bytes)", spec.page_spare_size)
    table.add_row("Tread", "page read time (us)", spec.t_read_us)
    table.add_row("Twrite", "page write time (us)", spec.t_write_us)
    table.add_row("Terase", "block erase time (us)", spec.t_erase_us)
    return table


# ----------------------------------------------------------------------
# Experiment 1 — Figure 12
# ----------------------------------------------------------------------

def experiment1(scale: Optional[BenchScale] = None) -> ResultTable:
    """Read/write/overall time per update operation (Figure 12)."""
    scale = scale or current_scale()
    runner = scale.runner()
    table = ResultTable(
        experiment="exp1_fig12",
        title="Experiment 1 (Figure 12): time per update operation, "
        "N_updates_till_write=1, %Changed=2",
        columns=(
            "method",
            "read_us",
            "write_us",
            "gc_us",
            "write_with_gc_us",
            "overall_us",
        ),
    )
    for label in method_labels(include_ipu=True):
        m = measure_updates(label, runner, pct_changed=2.0, n_updates_till_write=1)
        table.add_row(
            label, m.read_us, m.write_us, m.gc_us, m.write_with_gc_us, m.overall_us
        )
    table.note(f"scale={scale.name}, db={runner.database_pages} pages")
    return table


# ----------------------------------------------------------------------
# Experiment 2 — Figure 13
# ----------------------------------------------------------------------

def experiment2(
    scale: Optional[BenchScale] = None,
    page_size: int = 2048,
    n_points: Sequence[int] = N_UPDATES_SWEEP,
) -> ResultTable:
    """Overall time vs N_updates_till_write (Figure 13a, 13b for 8 KB)."""
    scale = scale or current_scale()
    if page_size == 2048:
        runner = scale.sweep_runner()
        suffix = "2k"
    elif page_size == 8192:
        runner = scale.sweep_runner(
            base_spec=BENCH_SPEC_8K,
            database_pages=max(scale.database_pages // 4, 128),
        )
        suffix = "8k"
    else:
        raise ValueError("page_size must be 2048 or 8192")
    table = ResultTable(
        experiment=f"exp2_fig13_{suffix}",
        title=f"Experiment 2 (Figure 13, {page_size // 1024}KB pages): overall "
        "time per update operation vs N_updates_till_write (%Changed=2)",
        columns=("method", "n_updates", "overall_us"),
    )
    for label in method_labels(include_ipu=True):
        for n in n_points:
            m = measure_updates(label, runner, pct_changed=2.0, n_updates_till_write=n)
            table.add_row(label, n, m.overall_us)
    table.note(f"scale={scale.name}, db={runner.database_pages} pages")
    return table


# ----------------------------------------------------------------------
# Experiment 3 — Figure 14
# ----------------------------------------------------------------------

def experiment3(
    scale: Optional[BenchScale] = None,
    n_updates_points: Sequence[int] = (1, 5),
    pct_points: Sequence[float] = PCT_CHANGED_SWEEP,
) -> ResultTable:
    """Overall time vs %ChangedByOneU_Op (Figure 14)."""
    scale = scale or current_scale()
    runner = scale.sweep_runner()
    table = ResultTable(
        experiment="exp3_fig14",
        title="Experiment 3 (Figure 14): overall time per update operation "
        "vs %ChangedByOneU_Op",
        columns=("method", "n_updates", "pct_changed", "overall_us"),
    )
    for n in n_updates_points:
        for label in method_labels(include_ipu=True):
            for pct in pct_points:
                m = measure_updates(
                    label, runner, pct_changed=pct, n_updates_till_write=n
                )
                table.add_row(label, n, pct, m.overall_us)
    table.note(f"scale={scale.name}, db={runner.database_pages} pages")
    return table


# ----------------------------------------------------------------------
# Experiment 4 — Figure 15
# ----------------------------------------------------------------------

def experiment4(
    scale: Optional[BenchScale] = None,
    n_updates_points: Sequence[int] = (1, 5),
    mix_points: Sequence[float] = PCT_UPDATE_SWEEP,
) -> ResultTable:
    """Read-only/update mixes vs %UpdateOps (Figure 15)."""
    scale = scale or current_scale()
    runner = scale.sweep_runner()
    table = ResultTable(
        experiment="exp4_fig15",
        title="Experiment 4 (Figure 15): overall time per operation for "
        "read-only/update mixes (%Changed=2)",
        columns=("method", "n_updates", "pct_update", "overall_us"),
    )
    for n in n_updates_points:
        for label in method_labels(include_ipu=True):
            for pct in mix_points:
                m = measure_mix(
                    label,
                    runner,
                    pct_update=pct,
                    pct_changed=2.0,
                    n_updates_till_write=n,
                )
                table.add_row(label, n, pct, m.overall_us)
    table.note(f"scale={scale.name}, db={runner.database_pages} pages")
    return table


# ----------------------------------------------------------------------
# Experiment 5 — Figure 16
# ----------------------------------------------------------------------

def experiment5(
    scale: Optional[BenchScale] = None,
    tread_points: Sequence[float] = TREAD_SWEEP,
    twrite_points: Sequence[float] = TWRITE_POINTS,
) -> ResultTable:
    """Overall time as Tread/Twrite vary (Figure 16)."""
    scale = scale or current_scale()
    table = ResultTable(
        experiment="exp5_fig16",
        title="Experiment 5 (Figure 16): overall time per update operation "
        "as flash timing parameters vary (N=1, %Changed=2)",
        columns=("method", "t_write_us", "t_read_us", "overall_us"),
    )
    labels = [l for l in method_labels(include_ipu=False)]
    for t_write in twrite_points:
        for t_read in tread_points:
            spec = SAMSUNG_K9L8G08U0M.with_timings(
                t_read_us=t_read, t_write_us=t_write
            )
            runner = scale.sweep_runner(base_spec=spec)
            for label in labels:
                m = measure_updates(
                    label, runner, pct_changed=2.0, n_updates_till_write=1
                )
                table.add_row(label, t_write, t_read, m.overall_us)
    table.note("Terase fixed at 1500us, as in the paper")
    table.note(f"scale={scale.name}")
    return table


# ----------------------------------------------------------------------
# Experiment 6 — Figure 17
# ----------------------------------------------------------------------

def experiment6(
    scale: Optional[BenchScale] = None,
    n_points: Sequence[int] = N_UPDATES_SWEEP,
) -> ResultTable:
    """Erase operations per update operation (Figure 17, longevity).

    Erases are rare events (one per reclaimed block), so this experiment
    uses a measurement window of at least twice the database size to get
    stable rates.
    """
    scale = scale or current_scale()
    runner = scale.sweep_runner(
        measure_ops=max(scale.sweep_measure_ops, scale.database_pages * 2)
    )
    table = ResultTable(
        experiment="exp6_fig17",
        title="Experiment 6 (Figure 17): erase operations per update "
        "operation vs N_updates_till_write (%Changed=2)",
        columns=("method", "n_updates", "erases_per_op"),
    )
    for label in method_labels(include_ipu=False):
        for n in n_points:
            m = measure_updates(label, runner, pct_changed=2.0, n_updates_till_write=n)
            table.add_row(label, n, m.erases_per_op)
    table.note("IPU excluded as in the paper's Figure 17 (1 erase per op)")
    table.note(f"scale={scale.name}, db={runner.database_pages} pages")
    return table


# ----------------------------------------------------------------------
# Experiment 7 — Figure 18
# ----------------------------------------------------------------------

def experiment7(
    scale: Optional[BenchScale] = None,
    buffer_fractions: Sequence[float] = BUFFER_FRACTIONS,
) -> ResultTable:
    """TPC-C I/O time per transaction vs DBMS buffer size (Figure 18)."""
    scale = scale or current_scale()
    table = ResultTable(
        experiment="exp7_fig18",
        title="Experiment 7 (Figure 18): TPC-C I/O time per transaction "
        "as the DBMS buffer size is varied",
        columns=(
            "method",
            "buffer_fraction",
            "buffer_pages",
            "io_us_per_txn",
            "hit_ratio",
        ),
    )
    for label in method_labels(include_ipu=False):
        for fraction in buffer_fractions:
            m = run_tpcc(
                label,
                scale.tpcc_scale,
                buffer_fraction=fraction,
                n_transactions=scale.tpcc_transactions,
            )
            table.add_row(
                label, fraction, m.buffer_pages, m.io_us_per_txn, m.hit_ratio
            )
    table.note(f"scale={scale.name}")
    return table


# ----------------------------------------------------------------------
# Table 2 — measured qualitative properties
# ----------------------------------------------------------------------

def table2_properties(scale: Optional[BenchScale] = None) -> ResultTable:
    """Table 2's comparison, measured: flash ops per reflection/recreation."""
    scale = scale or current_scale()
    runner = scale.sweep_runner()
    table = ResultTable(
        experiment="table2_properties",
        title="Table 2 (measured): per-operation flash ops and coupling",
        columns=(
            "method",
            "reads_per_recreate",
            "writes_per_reflect",
            "coupling",
        ),
    )
    for label in method_labels(include_ipu=True):
        m = measure_updates(label, runner, pct_changed=2.0, n_updates_till_write=1)
        reads_per_op = m.read_us / runner.spec().t_read_us
        writes_per_op = (m.write_us + m.gc_us) / runner.spec().t_write_us
        from ..methods import make_method
        from ..flash.chip import FlashChip

        coupling = (
            "tightly-coupled"
            if make_method(label, FlashChip(runner.spec())).tightly_coupled
            else "loosely-coupled"
        )
        table.add_row(label, reads_per_op, writes_per_op, coupling)
    table.note("writes include amortized GC, expressed in Twrite units")
    return table


# ----------------------------------------------------------------------
# Ablations
# ----------------------------------------------------------------------

def ablation_max_differential_size(
    scale: Optional[BenchScale] = None,
    sizes: Sequence[int] = (64, 128, 256, 512, 1024, 2048),
) -> ResultTable:
    """Sweep Max_Differential_Size (the paper's x in PDL(x))."""
    scale = scale or current_scale()
    runner = scale.sweep_runner()
    table = ResultTable(
        experiment="ablation_max_diff",
        title="Ablation: PDL Max_Differential_Size sweep (N=1, %Changed=2)",
        columns=("max_diff_size", "read_us", "write_with_gc_us", "overall_us"),
    )
    from ..core.pdl import format_size

    for size in sizes:
        label = f"PDL ({format_size(size)})"
        m = measure_updates(label, runner, pct_changed=2.0, n_updates_till_write=1)
        table.add_row(size, m.read_us, m.write_with_gc_us, m.overall_us)
    return table


def ablation_diff_granularity(
    scale: Optional[BenchScale] = None,
    units: Sequence[Optional[int]] = (None, 8, 16, 32, 64),
) -> ResultTable:
    """Differential encoder granularity (None = byte-wise maximal runs)."""
    scale = scale or current_scale()
    runner = scale.sweep_runner()
    table = ResultTable(
        experiment="ablation_diff_unit",
        title="Ablation: differential encoding granularity for PDL (2KB)",
        columns=("diff_unit", "read_us", "write_with_gc_us", "overall_us"),
    )
    for unit in units:
        m = measure_updates(
            "PDL (2KB)",
            runner,
            pct_changed=2.0,
            n_updates_till_write=1,
            method_kwargs={"diff_unit": unit},
        )
        table.add_row("bytewise" if unit is None else unit,
                      m.read_us, m.write_with_gc_us, m.overall_us)
    table.note(
        "byte-wise maximal runs suppress Case 3 (footnote 16's sawtooth); "
        "see DESIGN.md"
    )
    return table


def ablation_victim_policy(scale: Optional[BenchScale] = None) -> ResultTable:
    """GC victim-selection policy comparison (greedy / round-robin / wear)."""
    from ..ext.wear_leveling import round_robin_policy, wear_aware_policy
    from ..ftl.gc import greedy_policy

    scale = scale or current_scale()
    runner = scale.sweep_runner()
    table = ResultTable(
        experiment="ablation_victim_policy",
        title="Ablation: GC victim selection for PDL (256B)",
        columns=("policy", "overall_us", "gc_us", "erases_per_op", "max_block_wear"),
    )
    policies = {
        "greedy": greedy_policy,
        "round_robin": round_robin_policy(),
        "wear_aware": wear_aware_policy(),
    }
    for name, policy in policies.items():
        from ..workloads.runner import build_workload, warm_to_steady_state

        workload = build_workload(
            "PDL (256B)", runner, 2.0, 1, method_kwargs={"victim_policy": policy}
        )
        warm_to_steady_state(workload, runner)
        stats = workload.driver.stats
        snap = stats.snapshot()
        workload.run_updates(runner.measure_ops)
        delta = stats.delta_since(snap)
        from ..flash.stats import GC, READ_STEP, WRITE_STEP

        overall = delta.time_of(READ_STEP, WRITE_STEP, GC) / runner.measure_ops
        gc_us = delta.time_of(GC) / runner.measure_ops
        table.add_row(
            name,
            overall,
            gc_us,
            delta.total_erases / runner.measure_ops,
            max(delta.block_erases),
        )
    return table


ALL_EXPERIMENTS = {
    "table1": table1_chip_parameters,
    "exp1": experiment1,
    "exp2": experiment2,
    "exp2_8k": lambda scale=None: experiment2(scale, page_size=8192),
    "exp3": experiment3,
    "exp4": experiment4,
    "exp5": experiment5,
    "exp6": experiment6,
    "exp7": experiment7,
    "table2": table2_properties,
    "ablation_max_diff": ablation_max_differential_size,
    "ablation_diff_unit": ablation_diff_granularity,
    "ablation_victim_policy": ablation_victim_policy,
}
