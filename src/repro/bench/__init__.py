"""Experiment harness (S10): regenerates every table and figure.

See :mod:`repro.bench.experiments` for the per-figure orchestrators and
``python -m repro.bench --list`` for the CLI.
"""

from .config import SCALES, BenchScale, current_scale
from .experiments import (
    ALL_EXPERIMENTS,
    ablation_diff_granularity,
    ablation_max_differential_size,
    ablation_victim_policy,
    experiment1,
    experiment2,
    experiment3,
    experiment4,
    experiment5,
    experiment6,
    experiment7,
    table1_chip_parameters,
    table2_properties,
)
from .plotting import bar_chart, line_chart, render_figure
from .reporting import ResultTable

__all__ = [
    "ALL_EXPERIMENTS",
    "BenchScale",
    "ResultTable",
    "SCALES",
    "ablation_diff_granularity",
    "ablation_max_differential_size",
    "ablation_victim_policy",
    "bar_chart",
    "line_chart",
    "render_figure",
    "current_scale",
    "experiment1",
    "experiment2",
    "experiment3",
    "experiment4",
    "experiment5",
    "experiment6",
    "experiment7",
    "table1_chip_parameters",
    "table2_properties",
]
