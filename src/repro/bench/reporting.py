"""Result tables: paper-style text rendering and JSON persistence.

Each experiment produces a :class:`ResultTable` — named columns, one row
per (method, parameter) point — which renders as an aligned text table
(the "same rows/series the paper reports") and serializes to JSON under
``bench_results/`` so EXPERIMENTS.md can cite exact numbers.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

#: Default directory for persisted results (relative to the repo root).
RESULTS_DIR = os.environ.get("REPRO_BENCH_RESULTS", "bench_results")


@dataclass
class ResultTable:
    """One experiment's output: a titled table plus provenance notes."""

    experiment: str
    title: str
    columns: Sequence[str]
    rows: List[List[object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *values: object) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"{self.experiment}: row of {len(values)} values for "
                f"{len(self.columns)} columns"
            )
        self.rows.append(list(values))

    def note(self, text: str) -> None:
        self.notes.append(text)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render(self) -> str:
        widths = [len(str(c)) for c in self.columns]
        formatted: List[List[str]] = []
        for row in self.rows:
            cells = [_format_cell(v) for v in row]
            formatted.append(cells)
            widths = [max(w, len(c)) for w, c in zip(widths, cells)]
        lines = [f"== {self.title} =="]
        header = "  ".join(str(c).ljust(w) for c, w in zip(self.columns, widths))
        lines.append(header)
        lines.append("-" * len(header))
        for cells in formatted:
            lines.append("  ".join(c.ljust(w) for c, w in zip(cells, widths)))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def print(self) -> None:  # pragma: no cover - console convenience
        print(self.render())

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "experiment": self.experiment,
            "title": self.title,
            "columns": list(self.columns),
            "rows": self.rows,
            "notes": self.notes,
        }

    def save(self, directory: Optional[str] = None) -> str:
        directory = directory or RESULTS_DIR
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, f"{self.experiment}.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2)
        return path

    # ------------------------------------------------------------------
    # Queries (used by benchmark assertions)
    # ------------------------------------------------------------------
    def column(self, name: str) -> List[object]:
        idx = list(self.columns).index(name)
        return [row[idx] for row in self.rows]

    def lookup(self, **criteria: object) -> List[List[object]]:
        """Rows whose named columns equal the given values."""
        indices = {name: list(self.columns).index(name) for name in criteria}
        return [
            row
            for row in self.rows
            if all(row[idx] == value for name, (idx, value) in
                   ((n, (indices[n], criteria[n])) for n in criteria))
        ]

    def value(self, column: str, **criteria: object) -> object:
        rows = self.lookup(**criteria)
        if len(rows) != 1:
            raise KeyError(
                f"{self.experiment}: {criteria} matched {len(rows)} rows"
            )
        return rows[0][list(self.columns).index(column)]


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.1f}" if abs(value) >= 10 else f"{value:.4f}"
    return str(value)
