"""Benchmark scale profiles.

Experiments run at three scales selected by the ``REPRO_BENCH_SCALE``
environment variable:

* ``smoke`` — seconds per experiment; CI-sized sanity runs.
* ``small`` — the default; minutes for the full suite, large enough for
  every qualitative shape in the paper to emerge.
* ``paper`` — closest to the paper's 1 GB database (still scaled; the
  full geometry would need ~4 GB of emulator state).

All scales keep the paper's invariants: 2 KB pages, 64-page blocks,
Table-1 latencies, and a database occupying ~25 % of chip capacity.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace

from ..workloads.runner import RunnerConfig
from ..workloads.tpcc.schema import TpccScale

ENV_VAR = "REPRO_BENCH_SCALE"


@dataclass(frozen=True)
class BenchScale:
    """One named benchmark scale."""

    name: str
    database_pages: int
    measure_ops: int
    tpcc_scale: TpccScale
    tpcc_transactions: int
    sweep_measure_ops: int  # cheaper windows for multi-point sweeps

    def runner(self, **overrides) -> RunnerConfig:
        config = RunnerConfig(
            database_pages=self.database_pages,
            measure_ops=self.measure_ops,
        )
        return replace(config, **overrides) if overrides else config

    def sweep_runner(self, **overrides) -> RunnerConfig:
        config = RunnerConfig(
            database_pages=self.database_pages,
            measure_ops=self.sweep_measure_ops,
        )
        return replace(config, **overrides) if overrides else config


SCALES = {
    "smoke": BenchScale(
        name="smoke",
        database_pages=256,
        measure_ops=150,
        tpcc_scale=TpccScale(
            warehouses=1,
            districts_per_warehouse=2,
            customers_per_district=60,
            items=200,
            initial_orders_per_district=40,
        ),
        tpcc_transactions=120,
        sweep_measure_ops=100,
    ),
    "small": BenchScale(
        name="small",
        database_pages=1024,
        measure_ops=1000,
        tpcc_scale=TpccScale(
            warehouses=1,
            districts_per_warehouse=4,
            customers_per_district=100,
            items=500,
            initial_orders_per_district=80,
        ),
        tpcc_transactions=400,
        sweep_measure_ops=400,
    ),
    "paper": BenchScale(
        name="paper",
        database_pages=8192,
        measure_ops=4000,
        tpcc_scale=TpccScale(
            warehouses=2,
            districts_per_warehouse=10,
            customers_per_district=300,
            items=2000,
            initial_orders_per_district=300,
        ),
        tpcc_transactions=1500,
        sweep_measure_ops=1500,
    ),
}


def current_scale() -> BenchScale:
    """The scale selected by ``REPRO_BENCH_SCALE`` (default ``small``)."""
    name = os.environ.get(ENV_VAR, "small").strip().lower()
    if name not in SCALES:
        raise ValueError(
            f"{ENV_VAR}={name!r} unknown; choose from {sorted(SCALES)}"
        )
    return SCALES[name]
