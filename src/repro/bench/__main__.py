"""Command-line entry point: regenerate any of the paper's experiments.

Usage::

    python -m repro.bench --list
    python -m repro.bench exp1 exp7
    python -m repro.bench all --scale smoke
    repro-bench exp1                     # installed console script

Each experiment prints its table and persists JSON under
``bench_results/`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List

from .config import ENV_VAR, SCALES, current_scale
from .experiments import ALL_EXPERIMENTS
from .plotting import render_figure


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Regenerate the tables and figures of the "
        "page-differential-logging paper.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids (see --list), or 'all'",
    )
    parser.add_argument("--list", action="store_true", help="list experiment ids")
    parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        help=f"benchmark scale (default from ${ENV_VAR}, else 'small')",
    )
    parser.add_argument(
        "--no-save", action="store_true", help="skip writing bench_results/*.json"
    )
    parser.add_argument(
        "--figure", action="store_true",
        help="also draw an ASCII rendition of the figure",
    )
    args = parser.parse_args(argv)

    if args.list or not args.experiments:
        print("available experiments:")
        for name in ALL_EXPERIMENTS:
            print(f"  {name}")
        return 0

    if args.scale:
        os.environ[ENV_VAR] = args.scale
    scale = current_scale()

    names = list(args.experiments)
    if names == ["all"]:
        names = list(ALL_EXPERIMENTS)
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {', '.join(unknown)}")

    print(f"running at scale '{scale.name}' "
          f"(db={scale.database_pages} pages, ops={scale.measure_ops})")
    for name in names:
        started = time.time()
        table = ALL_EXPERIMENTS[name]()
        print()
        print(table.render())
        if args.figure:
            print()
            print(render_figure(table))
        if not args.no_save:
            path = table.save()
            print(f"  saved: {path}")
        print(f"  elapsed: {time.time() - started:.1f}s")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
