"""The database façade: buffer pool + logical page allocation.

This is the thin "storage system" of Figure 10: a page-oriented engine
that neither knows nor cares which page-update method sits below it.
Heap files and B+trees allocate logical pages here; all page traffic
flows through the LRU buffer pool, whose dirty evictions and misses are
the flash I/O the paper measures in Experiment 7.

The driver may just as well be a
:class:`~repro.sharding.driver.ShardedDriver` spanning many chips — the
engine is oblivious (``Database.flush`` then performs a batched group
flush across every shard), which is the paper's DBMS-independence
argument extended to device-count independence.
"""

from __future__ import annotations

from typing import Optional

from ..ftl.base import PageUpdateMethod
from ..ftl.errors import UnallocatedPageError
from .buffer import BufferManager, BufferStats
from .page import Page


class Database:
    """A minimal page-based database instance."""

    def __init__(self, driver: PageUpdateMethod, buffer_capacity: int):
        self.driver = driver
        self.pool = BufferManager(driver, buffer_capacity)
        self.page_size = driver.page_size
        self._next_pid = 0

    @classmethod
    def resume(
        cls, driver: PageUpdateMethod, buffer_capacity: int, allocated_pages: int
    ) -> "Database":
        """Re-attach to an existing (e.g. just-recovered) driver.

        ``allocated_pages`` restores the logical page allocation horizon
        the engine had reached before the crash; pages above it were
        never handed out and stay unreachable.
        """
        if allocated_pages < 0:
            raise ValueError("allocated_pages must be non-negative")
        db = cls(driver, buffer_capacity)
        db._next_pid = allocated_pages
        return db

    # ------------------------------------------------------------------
    # Page management
    # ------------------------------------------------------------------
    def allocate_page(self) -> Page:
        """Create a fresh, zero-filled logical page (dirty in the pool)."""
        pid = self._next_pid
        self._next_pid += 1
        return self.pool.create_page(pid, bytes(self.page_size))

    def page(self, pid: int) -> Page:
        """Fetch a page through the buffer pool.

        Raises :class:`UnallocatedPageError` (not a bare ``ValueError``)
        for ids outside the allocated space, so callers can tell a
        missing page apart from routing or mapping corruption below.
        """
        if not 0 <= pid < self._next_pid:
            raise UnallocatedPageError(
                f"logical page {pid} was never allocated "
                f"(allocation horizon is {self._next_pid})"
            )
        return self.pool.get_page(pid)

    @property
    def allocated_pages(self) -> int:
        return self._next_pid

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Write back all dirty pages and the driver's buffers."""
        self.pool.flush_all()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def buffer_stats(self) -> BufferStats:
        return self.pool.stats

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Database pages={self._next_pid} buffer={self.pool.capacity} "
            f"driver={self.driver.name}>"
        )
