"""The database façade: buffer pool + logical page allocation.

This is the thin "storage system" of Figure 10: a page-oriented engine
that neither knows nor cares which page-update method sits below it.
Heap files and B+trees allocate logical pages here; all page traffic
flows through the LRU buffer pool, whose dirty evictions and misses are
the flash I/O the paper measures in Experiment 7.

The driver may just as well be a
:class:`~repro.sharding.driver.ShardedDriver` spanning many chips — the
engine is oblivious (``Database.flush`` then performs a batched group
flush across every shard), which is the paper's DBMS-independence
argument extended to device-count independence.

Persistence: :meth:`Database.open` binds the engine to a directory of
:class:`~repro.flash.backend.FileBackend` images (one per shard, plus a
small JSON manifest holding the configuration that is *deployment*
state rather than flash state: shard count, routing kind, chip
geometry).  Opening an existing directory reconstructs the drivers from
the images alone via the paper's Figure-11 spare-area scan — there is
deliberately no sidecar file of mapping tables, because the paper's
recovery claim is that flash *is* the recovery log.  The logical
allocation horizon is likewise re-derived from the recovered mapping
tables (the highest recovered pid), matching the crash semantics of the
rest of the system: pages allocated but never flushed were never
durable and simply do not exist after a restart.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import asdict
from typing import List, Optional

from ..core.mapping import MappingConfig
from ..core.pdl import PdlDriver
from ..flash.backend import BackendError, FileBackend
from ..flash.chip import FlashChip
from ..flash.spec import BENCH_SPEC, FlashSpec
from ..ftl.base import PageUpdateMethod
from ..ftl.errors import ConfigurationError, UnallocatedPageError
from .bufferpool import BufferManager, BufferStats
from .page import Page

#: Name of the per-database configuration manifest.
MANIFEST_NAME = "manifest.json"

#: On-disk manifest format version.
MANIFEST_VERSION = 1


def _shard_image(path: str, index: int) -> str:
    return os.path.join(path, f"shard-{index:04d}.flash")


def _chips_of(driver: PageUpdateMethod) -> List[FlashChip]:
    chips = getattr(driver, "chips", None)
    if chips is not None:
        return list(chips)
    return [driver.chip]


class Database:
    """A minimal page-based database instance."""

    def __init__(
        self,
        driver: PageUpdateMethod,
        buffer_capacity: int,
        *,
        buffer_policy: str = "lru",
        writeback=None,
    ):
        self.driver = driver
        self.pool = BufferManager(
            driver, buffer_capacity, policy=buffer_policy, writeback=writeback
        )
        self.page_size = driver.page_size
        self._next_pid = 0
        #: Guards the allocation horizon: clients may share one engine
        #: across threads (see docs/bufferpool.md), so handing out the
        #: same pid twice must be impossible.
        self._alloc_lock = threading.Lock()
        self._closed = False
        #: Directory this database persists to; None for volatile setups.
        self.path: Optional[str] = None

    @classmethod
    def resume(
        cls,
        driver: PageUpdateMethod,
        buffer_capacity: int,
        allocated_pages: int,
        *,
        buffer_policy: str = "lru",
        writeback=None,
    ) -> "Database":
        """Re-attach to an existing (e.g. just-recovered) driver.

        ``allocated_pages`` restores the logical page allocation horizon
        the engine had reached before the crash; pages above it were
        never handed out and stay unreachable.
        """
        if allocated_pages < 0:
            raise ValueError("allocated_pages must be non-negative")
        db = cls(
            driver,
            buffer_capacity,
            buffer_policy=buffer_policy,
            writeback=writeback,
        )
        db._next_pid = allocated_pages
        return db

    # ------------------------------------------------------------------
    # Persistent open / close
    # ------------------------------------------------------------------
    @classmethod
    def open(
        cls,
        path: "str | os.PathLike",
        *,
        buffer_capacity: int = 64,
        spec: Optional[FlashSpec] = None,
        n_shards: Optional[int] = None,
        max_differential_size: Optional[int] = None,
        read_cache_pages: int = 0,
        parallel: "bool | str" = False,
        buffer_policy: str = "lru",
        writeback=None,
        mapping_cache: Optional[int] = None,
        snapshot_interval: Optional[int] = None,
        **driver_kwargs,
    ) -> "Database":
        """Open (or create) a persistent PDL database at ``path``.

        ``path`` is a directory holding one
        :class:`~repro.flash.backend.FileBackend` image per shard and a
        JSON manifest.  When the directory has no manifest, a fresh
        database is created from the given configuration (``spec``
        defaults to :data:`~repro.flash.spec.BENCH_SPEC` per shard,
        ``n_shards`` to 1, ``max_differential_size`` to the paper's 256).
        When it does, the stored configuration wins: each shard image is
        recovered via the Figure-11 spare-area scan and the engine
        resumes exactly the durable state a previous process flushed.
        Passing ``spec``/``n_shards``/``max_differential_size`` that
        contradict the manifest raises
        :class:`~repro.ftl.errors.ConfigurationError` rather than
        silently reinterpreting the images.

        ``parallel=True`` (or ``parallel="thread"``) executes shards on
        worker threads (a
        :class:`~repro.sharding.executor.ParallelShardedDriver`): the
        reopen-time Figure-11 scans, every buffer-pool flush and
        ``Database.flush()``'s group flush fan out across the array, and
        the engine becomes safe to drive from concurrent client threads
        (see ``docs/concurrency.md``).  ``parallel="process"`` goes one
        step further and runs each shard in its own worker *process*
        (a :class:`~repro.sharding.executor_proc.ProcessShardedDriver`)
        with page payloads in shared memory, so shard work executes on
        separate cores past the GIL; the per-shard images are reopened
        inside the workers, which is why the configuration must be
        spawn-safe (it is — the manifest holds only plain data).  Like
        GC tuning, parallelism is runtime — not manifest — state: pass
        it again on reopen.

        ``buffer_policy`` selects the buffer pool's eviction policy from
        the registry (``"lru"`` — the default and the paper-faithful
        configuration — ``"clock"``, or the scan-resistant ``"2q"``);
        ``writeback`` turns on background write-back (``"background"``
        or a :class:`~repro.storage.bufferpool.WritebackConfig`;
        ``None``/``"sync"`` keeps the historical synchronous behaviour).
        Both are runtime — not manifest — state, like ``parallel``; see
        ``docs/bufferpool.md``.

        ``mapping_cache`` (an entry count; ``0`` = resident) enables the
        demand-paged mapping tier on every shard: the mapping table
        lives in a journaled, snapshotted flash region
        (:mod:`repro.ext.journal`) and at most ``mapping_cache`` entries
        of it are held in RAM, so a shard can serve a device far larger
        than its mapping RAM and a crash restart replays the journal
        tail instead of scanning the device.  The region *geometry* is
        part of the on-flash layout and is therefore recorded in the
        manifest at creation time; ``mapping_cache`` itself (and
        ``snapshot_interval``, the dirty-record count that arms the next
        snapshot) are runtime tuning and may differ across reopens.
        Reopening a mapping database always re-enables the tier —
        passing ``mapping_cache=None`` then just means "default cache".
        Enabling the tier on a database created without it (or vice
        versa, via explicit ``mapping_cache`` on creation only) is a
        layout change and raises
        :class:`~repro.ftl.errors.ConfigurationError`.

        ``read_cache_pages`` enables the per-chip LRU base-page read
        cache; remaining keyword arguments go to the (per-shard)
        :class:`~repro.core.pdl.PdlDriver` constructor or recovery.
        GC tuning rides through them — e.g.
        ``gc_config=GcConfig(policy="cb", incremental_steps=4)``
        selects cost-benefit incremental collection on every shard.
        Like the buffer capacity, GC tuning is runtime (not manifest)
        state: pass it again on reopen.
        """
        path = os.fspath(path)
        pool_kwargs = {"buffer_policy": buffer_policy, "writeback": writeback}
        manifest_path = os.path.join(path, MANIFEST_NAME)
        if os.path.exists(manifest_path):
            return cls._open_existing(
                path,
                buffer_capacity,
                spec,
                n_shards,
                max_differential_size,
                read_cache_pages,
                parallel,
                pool_kwargs,
                driver_kwargs,
                mapping_cache,
                snapshot_interval,
            )
        return cls._create_new(
            path,
            buffer_capacity,
            spec if spec is not None else BENCH_SPEC,
            n_shards if n_shards is not None else 1,
            max_differential_size if max_differential_size is not None else 256,
            read_cache_pages,
            parallel,
            pool_kwargs,
            driver_kwargs,
            mapping_cache,
            snapshot_interval,
        )

    @classmethod
    def _create_new(
        cls,
        path: str,
        buffer_capacity: int,
        spec: FlashSpec,
        n_shards: int,
        max_differential_size: int,
        read_cache_pages: int,
        parallel: bool,
        pool_kwargs: dict,
        driver_kwargs: dict,
        mapping_cache: Optional[int] = None,
        snapshot_interval: Optional[int] = None,
    ) -> "Database":
        if n_shards < 1:
            raise ConfigurationError("n_shards must be at least 1")
        if "mapping" in driver_kwargs:
            raise ConfigurationError(
                "pass mapping_cache/snapshot_interval instead of a raw "
                "mapping= config: the region geometry must be recorded in "
                "the manifest to survive reopen"
            )
        mapping_cfg = None
        if mapping_cache is not None:
            mapping_cfg = MappingConfig.auto(
                spec,
                cache_entries=mapping_cache,
                snapshot_interval=snapshot_interval,
            )
            driver_kwargs = {**driver_kwargs, "mapping": mapping_cfg}
        elif snapshot_interval is not None:
            raise ConfigurationError(
                "snapshot_interval requires the mapping tier "
                "(pass mapping_cache as well)"
            )
        os.makedirs(path, exist_ok=True)
        chips = []
        for i in range(n_shards):
            image = _shard_image(path, i)
            if os.path.exists(image):
                # Image without a manifest: a creation that died before
                # the manifest write.  The database never existed; start
                # over rather than resurrecting a half-created image.
                os.remove(image)
            chips.append(
                FlashChip(
                    spec,
                    backend=FileBackend.create(image, spec),
                    read_cache_pages=read_cache_pages,
                )
            )
        driver = cls._assemble(
            chips, n_shards, max_differential_size, parallel, driver_kwargs
        )
        manifest = {
            "format": MANIFEST_VERSION,
            "n_shards": n_shards,
            "max_differential_size": max_differential_size,
            "router": {"kind": "hash"},
            "spec": asdict(spec),
        }
        if mapping_cfg is not None:
            # Geometry only: cache size and snapshot cadence are runtime
            # tuning, but the region layout is burned into the images.
            manifest["mapping"] = {
                "region_blocks": mapping_cfg.region_blocks,
                "journal_blocks": mapping_cfg.journal_blocks,
            }
        with open(os.path.join(path, MANIFEST_NAME), "w", encoding="utf-8") as fh:
            json.dump(manifest, fh, indent=2, sort_keys=True)
        db = cls(driver, buffer_capacity, **pool_kwargs)
        db.path = path
        return db

    @classmethod
    def _open_existing(
        cls,
        path: str,
        buffer_capacity: int,
        spec: Optional[FlashSpec],
        n_shards: Optional[int],
        max_differential_size: Optional[int],
        read_cache_pages: int,
        parallel: bool,
        pool_kwargs: dict,
        driver_kwargs: dict,
        mapping_cache: Optional[int] = None,
        snapshot_interval: Optional[int] = None,
    ) -> "Database":
        with open(os.path.join(path, MANIFEST_NAME), encoding="utf-8") as fh:
            manifest = json.load(fh)
        if manifest.get("format") != MANIFEST_VERSION:
            raise BackendError(
                f"database at {path!r} has manifest format "
                f"{manifest.get('format')!r}, expected {MANIFEST_VERSION}"
            )
        stored_shards = int(manifest["n_shards"])
        stored_max_diff = int(manifest["max_differential_size"])
        stored_spec = FlashSpec(**manifest["spec"])
        router_kind = manifest.get("router", {}).get("kind")
        if router_kind != "hash":
            # Routing is deployment config the reopen path must honour;
            # silently defaulting would send pids to the wrong shards.
            raise ConfigurationError(
                f"database at {path!r} uses router kind {router_kind!r}; "
                "Database.open only supports 'hash' (use recover_all with "
                "an explicit router for custom partitions)"
            )
        if n_shards is not None and n_shards != stored_shards:
            raise ConfigurationError(
                f"database at {path!r} has {stored_shards} shards, "
                f"requested {n_shards}"
            )
        if max_differential_size is not None and max_differential_size != stored_max_diff:
            raise ConfigurationError(
                f"database at {path!r} uses Max_Differential_Size "
                f"{stored_max_diff}, requested {max_differential_size}"
            )
        if spec is not None and asdict(spec) != asdict(stored_spec):
            raise ConfigurationError(
                f"database at {path!r} was created with a different spec"
            )
        if "mapping" in driver_kwargs:
            raise ConfigurationError(
                "pass mapping_cache/snapshot_interval instead of a raw "
                "mapping= config: the region geometry comes from the manifest"
            )
        stored_mapping = manifest.get("mapping")
        if stored_mapping is not None:
            # The region layout is durable; cache size and snapshot
            # cadence are fresh runtime choices on every reopen.
            mapping_cfg = MappingConfig(
                region_blocks=int(stored_mapping["region_blocks"]),
                journal_blocks=int(stored_mapping["journal_blocks"]),
                cache_entries=mapping_cache if mapping_cache is not None else 0,
                snapshot_interval=(
                    snapshot_interval
                    if snapshot_interval is not None
                    else max(64, stored_spec.n_pages // 4)
                ),
            )
            driver_kwargs = {**driver_kwargs, "mapping": mapping_cfg}
        elif mapping_cache is not None or snapshot_interval is not None:
            raise ConfigurationError(
                f"database at {path!r} was created without the mapping "
                "tier; its region cannot be carved out after the fact"
            )
        chips = [
            FlashChip(
                stored_spec,
                backend=FileBackend.open(_shard_image(path, i), stored_spec),
                read_cache_pages=read_cache_pages,
            )
            for i in range(stored_shards)
        ]
        # Figure-11 recovery per shard; recover_* resumes timestamps.
        # A parallel open routes even a single shard through recover_all:
        # the one-worker array is what makes the driver safe for
        # concurrent client threads.
        if stored_shards == 1 and not parallel:
            from ..core.recovery import recover_driver

            driver, _report = recover_driver(
                chips[0], max_differential_size=stored_max_diff, **driver_kwargs
            )
        else:
            from ..sharding.recovery import recover_all

            driver, _reports = recover_all(
                chips,
                max_differential_size=stored_max_diff,
                parallel=parallel,
                **driver_kwargs,
            )
        db = cls.resume(
            driver, buffer_capacity, _allocation_horizon(driver), **pool_kwargs
        )
        db.path = path
        return db

    @staticmethod
    def _assemble(
        chips: List[FlashChip],
        n_shards: int,
        max_differential_size: int,
        parallel: "bool | str",
        driver_kwargs: dict,
    ) -> PageUpdateMethod:
        if parallel == "process":
            # The freshly created images are handed to the workers,
            # which rebuild the per-shard PDL drivers from spawn-safe
            # recipes; the parent keeps no chip handles.
            from ..sharding.executor_proc import (
                ProcessShardedDriver,
                factories_from_chips,
            )

            factories = factories_from_chips(
                chips, f"PDL ({max_differential_size}B)", driver_kwargs
            )
            return ProcessShardedDriver(factories)
        shards = [
            PdlDriver(chip, max_differential_size=max_differential_size, **driver_kwargs)
            for chip in chips
        ]
        if parallel:
            # Even one shard gains the executor's mailbox: all client
            # threads serialize through the worker, making the engine
            # safe for concurrent use.
            from ..sharding.executor import ParallelShardedDriver

            return ParallelShardedDriver(shards)
        if n_shards == 1:
            return shards[0]
        from ..sharding.driver import ShardedDriver

        return ShardedDriver(shards)

    def close(self) -> None:
        """Flush everything durable, then release the device backends.

        Safe to call twice.  After ``close`` the database (and its
        driver) must not be used; reopen with :meth:`open`.
        """
        if self._closed:
            return
        try:
            self.flush()
        finally:
            # Even when the flush surfaces a write-back daemon error,
            # the daemon and the device backends must still be released
            # (the synchronous flush itself completed first).
            self.pool.close()  # stop the write-back daemon before the driver
            driver_close = getattr(self.driver, "close", None)
            if driver_close is not None:
                # Sharded drivers close their own chips; the parallel
                # driver additionally stops its worker pool.
                driver_close()
            else:
                for chip in _chips_of(self.driver):
                    chip.close()
            self._closed = True

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Page management
    # ------------------------------------------------------------------
    def allocate_page(self) -> Page:
        """Create a fresh, zero-filled logical page (dirty in the pool)."""
        with self._alloc_lock:
            pid = self._next_pid
            self._next_pid += 1
        return self.pool.create_page(pid, bytes(self.page_size))

    def page(self, pid: int) -> Page:
        """Fetch a page through the buffer pool.

        Raises :class:`UnallocatedPageError` (not a bare ``ValueError``)
        for ids outside the allocated space, so callers can tell a
        missing page apart from routing or mapping corruption below.
        """
        if not 0 <= pid < self._next_pid:
            raise UnallocatedPageError(
                f"logical page {pid} was never allocated "
                f"(allocation horizon is {self._next_pid})"
            )
        return self.pool.get_page(pid)

    @property
    def allocated_pages(self) -> int:
        return self._next_pid

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Write back all dirty pages and the driver's buffers."""
        self.pool.flush_all()

    def fsck(self, repair: bool = True):
        """Scan the device(s) for single-page corruption and repair online.

        Dirty pages are flushed first so the scan sees the engine's full
        durable state, and the buffer pool's clean cache is dropped
        afterwards so no repaired (or lost) page is shadowed by a stale
        in-memory copy.  Returns a :class:`~repro.core.fsck.FsckReport`
        (merged across shards for sharded engines).
        """
        self.flush()
        report = self.driver.fsck(repair=repair)
        if repair:
            self.pool.clear()
        return report

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def buffer_stats(self) -> BufferStats:
        return self.pool.stats

    def report(self) -> dict:
        """Merged flash + buffer-pool report (one dict for dashboards).

        Flash totals, stall tails and GC counters come from the driver's
        stats (an :class:`~repro.sharding.stats.AggregateStats` view is
        built for single-chip drivers), with the extended
        :class:`BufferStats` embedded under ``"buffer"``.
        """
        stats = self.driver.stats
        if not hasattr(stats, "report"):
            from ..sharding.stats import AggregateStats

            stats = AggregateStats([stats])
        return stats.report(buffer_stats=self.pool.stats)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Database pages={self._next_pid} buffer={self.pool.capacity} "
            f"driver={self.driver.name}>"
        )


def _allocation_horizon(driver: PageUpdateMethod) -> int:
    """Highest recovered pid + 1: the durable logical allocation horizon."""
    horizon = getattr(driver, "allocation_horizon", None)
    if horizon is not None:
        # Process-backed drivers hold no local mapping tables; the
        # horizon is fetched from the workers.
        return horizon()
    shards = getattr(driver, "shards", None) or [driver]
    top = -1
    for shard in shards:
        table_top = getattr(shard.ppmt, "max_pid", None)
        if table_top is not None:
            # Tiered tables track the horizon explicitly — walking them
            # would demand-page the entire snapshot just to find a max.
            top = max(top, table_top)
            continue
        for pid, _entry in shard.ppmt.items():
            top = max(top, pid)
    return top + 1
