"""Heap files: unordered record storage over slotted pages.

A heap file owns a set of logical pages and places records wherever room
exists, returning stable :class:`RID` handles.  A RAM free-space hint map
avoids probing full pages (the catalog is process-lifetime state, like
the rest of the mini engine — the experiments never reopen a database).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, NamedTuple, Optional, Tuple

from .db import Database
from .slotted import SlottedPage


class RID(NamedTuple):
    """A record identifier: logical page id + slot number."""

    pid: int
    slot: int


class HeapFile:
    """An unordered collection of variable-length records."""

    def __init__(self, db: Database, name: str):
        self.db = db
        self.name = name
        self.pages: List[int] = []
        #: pid -> last observed free space (hint only; verified on use).
        self._free_hint: Dict[int, int] = {}
        self.record_count = 0

    # ------------------------------------------------------------------
    # Record operations
    # ------------------------------------------------------------------
    def insert(self, record: bytes) -> RID:
        """Store a record, growing the file when no page has room."""
        if len(record) > self.db.page_size // 2:
            raise ValueError(
                f"record of {len(record)} bytes exceeds half a page; "
                "large objects are out of scope"
            )
        for pid in self._candidate_pages(len(record)):
            spage = SlottedPage(self.db.page(pid))
            slot = spage.insert(record)
            if slot is not None:
                self._free_hint[pid] = spage.free_space
                self.record_count += 1
                return RID(pid, slot)
            self._free_hint[pid] = spage.free_space
        page = self.db.allocate_page()
        spage = SlottedPage.format(page)
        slot = spage.insert(record)
        assert slot is not None, "fresh page must accept a half-page record"
        self.pages.append(page.pid)
        self._free_hint[page.pid] = spage.free_space
        self.record_count += 1
        return RID(page.pid, slot)

    def read(self, rid: RID) -> bytes:
        return SlottedPage(self.db.page(rid.pid)).read(rid.slot)

    def update(self, rid: RID, record: bytes) -> RID:
        """Overwrite a record; relocates it when it no longer fits."""
        spage = SlottedPage(self.db.page(rid.pid))
        if spage.update(rid.slot, record):
            self._free_hint[rid.pid] = spage.free_space
            return rid
        spage.delete(rid.slot)
        self._free_hint[rid.pid] = spage.free_space
        self.record_count -= 1
        return self.insert(record)

    def delete(self, rid: RID) -> None:
        spage = SlottedPage(self.db.page(rid.pid))
        spage.delete(rid.slot)
        self._free_hint[rid.pid] = spage.free_space
        self.record_count -= 1

    # ------------------------------------------------------------------
    # Scans
    # ------------------------------------------------------------------
    def scan(self) -> Iterator[Tuple[RID, bytes]]:
        """Yield every live record in page order."""
        for pid in self.pages:
            spage = SlottedPage(self.db.page(pid))
            for slot, record in spage.records():
                yield RID(pid, slot), record

    def __len__(self) -> int:
        return self.record_count

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _candidate_pages(self, need: int) -> Iterator[int]:
        """Pages whose hinted free space may fit the record (best effort)."""
        for pid in reversed(self.pages):
            if self._free_hint.get(pid, 0) >= need:
                yield pid
