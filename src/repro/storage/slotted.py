"""Slotted-page record layout.

The classic DBMS heap-page organization: a header, record data growing
forward from the header, and a slot directory growing backward from the
page end.  Every slot holds the record's offset and length; deleting a
record tombstones its slot.  All mutations go through :class:`Page` so
update logs are recorded for the tightly-coupled driver.

Layout (little-endian)::

    header:  u16 magic 0x51A7 | u16 slot_count | u16 free_start | u16 live
    slots:   directory entry i at page_end - 4*(i+1): u16 offset | u16 length
             offset 0xFFFF marks a tombstone

``free_start`` is the first byte available for record data; free space is
the gap between it and the lowest slot-directory entry.
"""

from __future__ import annotations

import struct
from typing import Iterator, List, Optional, Tuple

from .page import Page

_HEADER = struct.Struct("<HHHH")
_SLOT = struct.Struct("<HH")

HEADER_SIZE = _HEADER.size  # 8
SLOT_SIZE = _SLOT.size  # 4
MAGIC = 0x51A7
TOMBSTONE = 0xFFFF


class SlottedPageError(RuntimeError):
    """Raised on malformed pages or invalid slot references."""


class SlottedPage:
    """A slotted-record view over a buffered :class:`Page`."""

    def __init__(self, page: Page):
        self.page = page

    # ------------------------------------------------------------------
    # Formatting / validation
    # ------------------------------------------------------------------
    @classmethod
    def format(cls, page: Page) -> "SlottedPage":
        """Initialize an empty slotted page in-place."""
        page.write(0, _HEADER.pack(MAGIC, 0, HEADER_SIZE, 0))
        return cls(page)

    def _header(self) -> Tuple[int, int, int, int]:
        magic, slot_count, free_start, live = _HEADER.unpack_from(
            self.page.read(0, HEADER_SIZE), 0
        )
        if magic != MAGIC:
            raise SlottedPageError(
                f"page {self.page.pid} is not a slotted page (magic 0x{magic:04X})"
            )
        return magic, slot_count, free_start, live

    @property
    def slot_count(self) -> int:
        return self._header()[1]

    @property
    def live_records(self) -> int:
        return self._header()[3]

    @property
    def free_space(self) -> int:
        """Bytes available for a new record (excluding its slot entry)."""
        _, slot_count, free_start, _ = self._header()
        directory_start = self.page.size - slot_count * SLOT_SIZE
        gap = directory_start - free_start
        return max(0, gap - SLOT_SIZE)

    # ------------------------------------------------------------------
    # Slot directory access
    # ------------------------------------------------------------------
    def _slot_pos(self, slot: int) -> int:
        return self.page.size - SLOT_SIZE * (slot + 1)

    def _read_slot(self, slot: int) -> Tuple[int, int]:
        _, slot_count, _, _ = self._header()
        if not 0 <= slot < slot_count:
            raise SlottedPageError(
                f"slot {slot} out of range (page {self.page.pid} has {slot_count})"
            )
        return _SLOT.unpack_from(self.page.read(self._slot_pos(slot), SLOT_SIZE), 0)

    def _write_slot(self, slot: int, offset: int, length: int) -> None:
        self.page.write(self._slot_pos(slot), _SLOT.pack(offset, length))

    # ------------------------------------------------------------------
    # Record operations
    # ------------------------------------------------------------------
    def insert(self, record: bytes) -> Optional[int]:
        """Store a record; returns its slot number, or None if full.

        Tombstoned slots are reused (their directory entry is recycled,
        record space is not compacted — standard lazy reclamation).
        """
        if not record:
            raise ValueError("empty records are not supported")
        _, slot_count, free_start, live = self._header()
        directory_start = self.page.size - slot_count * SLOT_SIZE
        reuse = None
        for slot in range(slot_count):
            offset, _length = self._read_slot(slot)
            if offset == TOMBSTONE:
                reuse = slot
                break
        needed = len(record) + (0 if reuse is not None else SLOT_SIZE)
        if directory_start - free_start < needed:
            return None
        self.page.write(free_start, record)
        if reuse is None:
            slot = slot_count
            slot_count += 1
        else:
            slot = reuse
        self._write_slot(slot, free_start, len(record))
        self.page.write(
            0, _HEADER.pack(MAGIC, slot_count, free_start + len(record), live + 1)
        )
        return slot

    def read(self, slot: int) -> bytes:
        offset, length = self._read_slot(slot)
        if offset == TOMBSTONE:
            raise SlottedPageError(f"slot {slot} of page {self.page.pid} is deleted")
        return self.page.read(offset, length)

    def update(self, slot: int, record: bytes) -> bool:
        """Overwrite a record in place.

        Same-size updates (the common DBMS case with fixed-size records)
        always succeed; shrinking succeeds in place; growth relocates the
        record within the page if space allows, else returns False so the
        caller can delete + reinsert elsewhere.
        """
        offset, length = self._read_slot(slot)
        if offset == TOMBSTONE:
            raise SlottedPageError(f"slot {slot} of page {self.page.pid} is deleted")
        if len(record) <= length:
            self.page.write_delta(offset, record)
            if len(record) != length:
                self._write_slot(slot, offset, len(record))
            return True
        magic, slot_count, free_start, live = self._header()
        directory_start = self.page.size - slot_count * SLOT_SIZE
        if directory_start - free_start < len(record):
            return False
        self.page.write(free_start, record)
        self._write_slot(slot, free_start, len(record))
        self.page.write(0, _HEADER.pack(magic, slot_count, free_start + len(record), live))
        return True

    def delete(self, slot: int) -> None:
        offset, _length = self._read_slot(slot)
        if offset == TOMBSTONE:
            raise SlottedPageError(f"slot {slot} of page {self.page.pid} already deleted")
        magic, slot_count, free_start, live = self._header()
        self._write_slot(slot, TOMBSTONE, 0)
        self.page.write(0, _HEADER.pack(magic, slot_count, free_start, live - 1))

    def records(self) -> Iterator[Tuple[int, bytes]]:
        """Yield ``(slot, record)`` for every live record."""
        for slot in range(self.slot_count):
            offset, length = self._read_slot(slot)
            if offset != TOMBSTONE:
                yield slot, self.page.read(offset, length)

    @classmethod
    def capacity_for(cls, record_size: int, page_size: int) -> int:
        """How many fixed-size records fit in one formatted page."""
        return (page_size - HEADER_SIZE) // (record_size + SLOT_SIZE)
