"""Buffered logical pages with change-log recording.

:class:`Page` is the in-memory image of one logical page held by the
buffer pool.  All mutations go through :meth:`Page.write`, which both
applies the change and records it as a :class:`ChangeRun` — the *update
log* that the storage manager of a DBMS maintains internally.  This is
precisely the coupling seam of the paper's Figure 10: the tightly-coupled
log-based method (IPL) consumes these logs at eviction time, while
loosely-coupled methods (PDL, OPU, IPU) never look at them.

To keep logs minimal (and the comparison fair), :meth:`write_delta`
diffs the new content against the current content and records only the
genuinely changed byte runs.

Concurrency: many client threads share one pool over a
:class:`~repro.sharding.executor.ParallelShardedDriver`, so each page
carries a small re-entrant latch serializing content mutation, log
clearing and pin-count changes.  The latch is a *leaf* lock in the
ordering ``pool lock → page latch → notification lock`` (see
``docs/bufferpool.md``); the pool-observer callbacks invoked under it
must therefore never take the pool lock — they only update the pool's
dirty/unpark bookkeeping, which lives behind its own small lock.

Pinning marks a page as in use so the pool will not evict it.  Prefer
the :meth:`pinned` context manager (or
:meth:`~repro.storage.bufferpool.manager.BufferManager.pinned`, which
also makes the lookup-and-pin atomic) over bare :meth:`pin`/
:meth:`unpin` pairs: an exception between the two leaks the pin and
silently shrinks the pool until it hits :class:`BufferError`.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator, List

from ..core.differential import compute_runs
from ..ftl.base import ChangeRun


class Page:
    """One logical page held in the buffer pool."""

    __slots__ = (
        "pid",
        "_data",
        "dirty",
        "change_log",
        "pin_count",
        "latch",
        "version",
        "_observer",
    )

    def __init__(self, pid: int, data: bytes):
        self.pid = pid
        self._data = bytearray(data)
        self.dirty = False
        #: Update logs accumulated since the page was last clean.
        self.change_log: List[ChangeRun] = []
        self.pin_count = 0
        #: Serializes content mutation, log clearing and pinning.
        #: Re-entrant so :meth:`write_delta` can call :meth:`write`.
        self.latch = threading.RLock()
        #: Bumped on every logged write; background write-back compares
        #: versions to decide whether its flushed snapshot is current.
        self.version = 0
        #: The owning pool (dirty/clean/unpin notifications), if any.
        self._observer = None

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return len(self._data)

    @property
    def data(self) -> bytes:
        """An immutable snapshot of the page contents."""
        with self.latch:
            return bytes(self._data)

    def read(self, offset: int, length: int) -> bytes:
        with self.latch:
            if offset < 0 or offset + length > len(self._data):
                raise ValueError(
                    f"read [{offset}, {offset + length}) outside page of "
                    f"{len(self._data)} bytes"
                )
            return bytes(self._data[offset : offset + length])

    # ------------------------------------------------------------------
    # Mutation (always logged)
    # ------------------------------------------------------------------
    def write(self, offset: int, data: bytes) -> None:
        """Overwrite bytes at ``offset``, recording the update log."""
        with self.latch:
            if offset < 0 or offset + len(data) > len(self._data):
                raise ValueError(
                    f"write [{offset}, {offset + len(data)}) outside page of "
                    f"{len(self._data)} bytes"
                )
            if not data:
                return
            self._data[offset : offset + len(data)] = data
            self.change_log.append(ChangeRun(offset, bytes(data)))
            self.version += 1
            if not self.dirty:
                self.dirty = True
                if self._observer is not None:
                    self._observer._page_dirtied(self.pid)

    def write_delta(self, offset: int, data: bytes) -> None:
        """Like :meth:`write` but records only the bytes that differ.

        Node-level writers (the B+tree) re-serialize whole regions; this
        keeps the resulting update logs proportional to the real change.
        The latch is held across the diff *and* the writes, so the runs
        are consistent even under concurrent writers.
        """
        with self.latch:
            current = self.read(offset, len(data))
            for run in compute_runs(current, data):
                self.write(offset + run.offset, run.data)

    def clear_log(self) -> None:
        """Called by the buffer pool after a successful write-back."""
        with self.latch:
            self.change_log = []
            if self.dirty:
                self.dirty = False
                if self._observer is not None:
                    self._observer._page_cleaned(self.pid)

    # ------------------------------------------------------------------
    # Background write-back support
    # ------------------------------------------------------------------
    def writeback_snapshot(self):
        """Consistent ``(data, change_log copy, version)`` for a flusher."""
        with self.latch:
            return bytes(self._data), list(self.change_log), self.version

    def finish_writeback(self, snapshot_version: int, log_len: int) -> bool:
        """Reconcile after the snapshot reached flash.

        Returns True when the page is now clean.  When writers raced the
        flush, the runs covered by the snapshot are trimmed and the page
        stays dirty with only the residual log.
        """
        with self.latch:
            if self.version == snapshot_version:
                self.clear_log()
                return True
            del self.change_log[:log_len]
            return False

    # ------------------------------------------------------------------
    # Pool attachment
    # ------------------------------------------------------------------
    def attach(self, observer) -> None:
        """Bind the owning pool; reports a pre-existing dirty state."""
        with self.latch:
            self._observer = observer
            if self.dirty:
                observer._page_dirtied(self.pid)

    def detach(self) -> None:
        with self.latch:
            self._observer = None

    # ------------------------------------------------------------------
    # Pinning
    # ------------------------------------------------------------------
    def pin(self) -> None:
        with self.latch:
            self.pin_count += 1

    def unpin(self) -> None:
        with self.latch:
            if self.pin_count <= 0:
                raise RuntimeError(f"page {self.pid} unpinned more than pinned")
            self.pin_count -= 1
            if self.pin_count == 0 and self._observer is not None:
                self._observer._page_unpinned(self.pid)

    @contextmanager
    def pinned(self) -> Iterator["Page"]:
        """Pin for the duration of a ``with`` block (exception-safe).

        ``with page.pinned():`` can never leak a pin the way a bare
        :meth:`pin`/:meth:`unpin` pair around a raising operation does.
        """
        self.pin()
        try:
            yield self
        finally:
            self.unpin()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "dirty" if self.dirty else "clean"
        return f"<Page {self.pid} {state} pins={self.pin_count}>"
