"""Buffered logical pages with change-log recording.

:class:`Page` is the in-memory image of one logical page held by the
buffer pool.  All mutations go through :meth:`Page.write`, which both
applies the change and records it as a :class:`ChangeRun` — the *update
log* that the storage manager of a DBMS maintains internally.  This is
precisely the coupling seam of the paper's Figure 10: the tightly-coupled
log-based method (IPL) consumes these logs at eviction time, while
loosely-coupled methods (PDL, OPU, IPU) never look at them.

To keep logs minimal (and the comparison fair), :meth:`write_delta`
diffs the new content against the current content and records only the
genuinely changed byte runs.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.differential import compute_runs
from ..ftl.base import ChangeRun


class Page:
    """One logical page held in the buffer pool."""

    __slots__ = ("pid", "_data", "dirty", "change_log", "pin_count")

    def __init__(self, pid: int, data: bytes):
        self.pid = pid
        self._data = bytearray(data)
        self.dirty = False
        #: Update logs accumulated since the page was last clean.
        self.change_log: List[ChangeRun] = []
        self.pin_count = 0

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return len(self._data)

    @property
    def data(self) -> bytes:
        """An immutable snapshot of the page contents."""
        return bytes(self._data)

    def read(self, offset: int, length: int) -> bytes:
        if offset < 0 or offset + length > len(self._data):
            raise ValueError(
                f"read [{offset}, {offset + length}) outside page of "
                f"{len(self._data)} bytes"
            )
        return bytes(self._data[offset : offset + length])

    # ------------------------------------------------------------------
    # Mutation (always logged)
    # ------------------------------------------------------------------
    def write(self, offset: int, data: bytes) -> None:
        """Overwrite bytes at ``offset``, recording the update log."""
        if offset < 0 or offset + len(data) > len(self._data):
            raise ValueError(
                f"write [{offset}, {offset + len(data)}) outside page of "
                f"{len(self._data)} bytes"
            )
        if not data:
            return
        self._data[offset : offset + len(data)] = data
        self.change_log.append(ChangeRun(offset, bytes(data)))
        self.dirty = True

    def write_delta(self, offset: int, data: bytes) -> None:
        """Like :meth:`write` but records only the bytes that differ.

        Node-level writers (the B+tree) re-serialize whole regions; this
        keeps the resulting update logs proportional to the real change.
        """
        current = self.read(offset, len(data))
        for run in compute_runs(current, data):
            self.write(offset + run.offset, run.data)

    def clear_log(self) -> None:
        """Called by the buffer pool after a successful write-back."""
        self.change_log = []
        self.dirty = False

    # ------------------------------------------------------------------
    # Pinning
    # ------------------------------------------------------------------
    def pin(self) -> None:
        self.pin_count += 1

    def unpin(self) -> None:
        if self.pin_count <= 0:
            raise RuntimeError(f"page {self.pid} unpinned more than pinned")
        self.pin_count -= 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "dirty" if self.dirty else "clean"
        return f"<Page {self.pid} {state} pins={self.pin_count}>"
