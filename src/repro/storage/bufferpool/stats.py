"""Buffer-pool accounting: the extended :class:`BufferStats`.

The original pool counted hits/misses/evictions; the production pool
additionally meters everything Experiment 7's knob actually moves:

* how evictions were served — ``clean_reclaims`` (no flash write on the
  client thread) vs ``sync_writebacks`` (the backstop that stalls the
  client on flash);
* the *client-visible eviction stall* — host microseconds a page access
  spent waiting on synchronous write-back, recorded per eviction (zero
  for clean reclaims) so ``eviction_stall_p99_us`` is a tail over all
  evictions, mirroring the GC write-stall convention;
* background write-back throughput (``writeback_batches`` /
  ``writeback_pages``) and high-watermark emergencies
  (``writeback_kicks``);
* pinned-frame pressure: ``pinned_skips`` counts victim-scan rejections
  and ``pin_waits`` counts evictions that had to wait for an in-flight
  write-back — both climb long before the old all-frames-pinned
  :class:`BufferError` cliff.

All counters are mutated under the pool lock (the write-back daemon
included), so reads after a quiesce are exact.  Merged reporting lives
in :meth:`repro.sharding.stats.AggregateStats.report`, which embeds
:meth:`BufferStats.as_dict` next to the flash totals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ...flash.stats import LatencyRecorder


@dataclass
class BufferStats:
    """Hit/miss/eviction/write-back accounting for one pool."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    dirty_evictions: int = 0
    flushes: int = 0
    #: Evictions served by dropping a clean frame — no flash write on
    #: the client thread (the background write-back fast path).
    clean_reclaims: int = 0
    #: Dirty evictions written back synchronously on the client thread
    #: (always, without a write-back daemon; the backstop, with one).
    sync_writebacks: int = 0
    #: Background write-back batches and the dirty pages they flushed.
    writeback_batches: int = 0
    writeback_pages: int = 0
    #: Emergency daemon wake-ups from the eviction path (the clean scan
    #: found nothing — the daemon is behind the dirty rate).
    writeback_kicks: int = 0
    #: Victim-scan candidates rejected because the frame was pinned.
    pinned_skips: int = 0
    #: Evictions that waited for an in-flight background write-back.
    pin_waits: int = 0
    #: Concurrent misses on one pid: the loser's duplicate flash read is
    #: discarded but still counted as a miss (misses == driver reads).
    read_races: int = 0
    #: Name of the eviction policy serving this pool.
    policy: str = "lru"
    #: Host-µs eviction stalls, one sample per eviction (zero included).
    eviction_stalls: LatencyRecorder = field(default_factory=LatencyRecorder)
    #: Introspection counters owned by the eviction policy (parked
    #: frames, clock ref-bit clears, 2Q ghost promotions, ...).
    policy_counters: Dict[str, int] = field(default_factory=dict)

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def flashed_pages(self) -> int:
        """Pages this pool wrote to the driver (evictions + flushes +
        background write-back) — equals the driver-level write count in
        the stress-test audit."""
        return self.dirty_evictions + self.flushes + self.writeback_pages

    def eviction_stall_percentile(self, pct: float) -> float:
        """Nearest-rank percentile of per-eviction client stalls (host µs)."""
        return self.eviction_stalls.percentile(pct)

    @property
    def max_eviction_stall_us(self) -> float:
        return self.eviction_stalls.max_us

    def as_dict(self) -> Dict[str, object]:
        return {
            "policy": self.policy,
            "hits": self.hits,
            "misses": self.misses,
            "hit_ratio": self.hit_ratio,
            "evictions": self.evictions,
            "dirty_evictions": self.dirty_evictions,
            "clean_reclaims": self.clean_reclaims,
            "sync_writebacks": self.sync_writebacks,
            "flushes": self.flushes,
            "writeback_batches": self.writeback_batches,
            "writeback_pages": self.writeback_pages,
            "writeback_kicks": self.writeback_kicks,
            "pinned_skips": self.pinned_skips,
            "pin_waits": self.pin_waits,
            "read_races": self.read_races,
            "eviction_stall_p99_us": self.eviction_stall_percentile(99),
            "eviction_stall_max_us": self.max_eviction_stall_us,
            "policy_counters": dict(self.policy_counters),
        }
