"""The production buffer pool: thread-safe frames over a page-update driver.

This is the DBMS buffer of the paper's Experiment 7 grown into a
subsystem: pluggable eviction (:mod:`.policy`), thread-safe pinning, and
optional watermark-driven background write-back (:mod:`.writeback`).
With the defaults — ``policy="lru"``, ``writeback=None`` — its flash
behaviour is byte-identical to the original 148-line synchronous LRU
pool, which keeps every paper experiment faithful; the new machinery is
strictly opt-in.

Locking model (see ``docs/bufferpool.md``):

* one pool lock (re-entrant) guards the frame table, the eviction
  policy and the stats — every public entry point takes it;
* per-page latches guard page content/pins (:class:`~repro.storage.page
  .Page`); the ordering is always ``pool lock → page latch → dirty
  lock``, with the driver lock (serial drivers only) innermost;
* flash **reads** for misses happen *outside* the pool lock so client
  threads miss concurrently on a parallel sharded driver; a lost race
  discards the duplicate read and counts it in ``stats.read_races``;
* flash **writes** from evictions run under the pool lock — that is the
  synchronous stall the write-back daemon exists to avoid: with
  ``writeback="background"`` the eviction path first reclaims a clean
  frame (no flash I/O at all) and only falls back to a synchronous
  write-back when the daemon is behind.

A serial driver (plain :class:`~repro.core.pdl.PdlDriver` or
:class:`~repro.sharding.driver.ShardedDriver`) is not thread-safe, so
when one is used with the daemon (two threads!) all driver calls are
additionally serialized through an internal driver lock.  A
:class:`~repro.sharding.executor.ParallelShardedDriver` needs no such
lock — its per-shard mailboxes are the serialization — which is the
configuration where background write-back actually overlaps with client
work.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Iterator, List, Optional, Union

from ...ftl.base import PageUpdateMethod
from ..page import Page
from .policy import EvictionPolicy, make_eviction_policy
from .stats import BufferStats
from .writeback import WritebackConfig, WritebackDaemon, normalize_writeback


class BufferError(RuntimeError):
    """Raised on pool misuse (e.g. all frames pinned)."""


#: Candidates examined by the bounded clean-frame scan before the
#: eviction path gives up and falls back to synchronous write-back.
CLEAN_SCAN_MIN = 8


class BufferManager:
    """A fixed-capacity buffer pool over a page-update driver."""

    def __init__(
        self,
        driver: PageUpdateMethod,
        capacity: int,
        *,
        policy: Union[str, EvictionPolicy] = "lru",
        writeback=None,
    ):
        if capacity < 1:
            raise ValueError("buffer capacity must be at least one page")
        self.driver = driver
        self._capacity = capacity
        self._frames: Dict[int, Page] = {}
        if isinstance(policy, str):
            policy = make_eviction_policy(policy, capacity)
        self.policy = policy
        self.stats = BufferStats(policy=policy.name)
        self.stats.policy_counters = policy.counters  # live view

        self._lock = threading.RLock()
        #: Signalled when an in-flight background batch completes.
        self._inflight_cond = threading.Condition(self._lock)
        self._inflight: set = set()
        #: Per-pid eviction generation: lets a miss read that ran
        #: outside the lock detect an admit+evict cycle of the same pid
        #: (its image may be stale) and retry instead of admitting it.
        self._evict_gen: Dict[int, int] = {}
        #: Leaf lock: dirty counter + pending unpark queue + daemon cond.
        self._dirty_lock = threading.Lock()
        self._dirty_cond = threading.Condition(self._dirty_lock)
        self._dirty_count = 0
        self._repark: List[int] = []
        #: Serializes concurrent flush_all callers (durability points).
        self._flush_serial = threading.Lock()

        #: Serial drivers are not thread-safe; with a write-back daemon
        #: (a second thread) every driver call goes through this lock.
        #: Parallel sharded drivers serialize in their shard mailboxes.
        parallel = getattr(driver, "executor", None) is not None
        self._driver_lock: Optional[threading.Lock] = None

        config = normalize_writeback(writeback)
        self.writeback: Optional[WritebackDaemon] = None
        if config is not None:
            if not parallel:
                self._driver_lock = threading.Lock()
            self.writeback = WritebackDaemon(self, config)
        self._closed = False

    # ------------------------------------------------------------------
    # Capacity
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        return self._capacity

    @capacity.setter
    def capacity(self, value: int) -> None:
        """Resize the pool, evicting down when it shrinks."""
        if value < 1:
            raise ValueError("buffer capacity must be at least one page")
        with self._lock:
            while len(self._frames) > value:
                self._evict_one_locked()
            self._capacity = value
            self.policy.resize(value)

    # ------------------------------------------------------------------
    # Page access
    # ------------------------------------------------------------------
    def get_page(self, pid: int, *, pin: bool = False) -> Page:
        """Fetch a page, reading it from flash on a miss.

        The flash read happens outside the pool lock, so concurrent
        misses on *different* pages overlap on a parallel driver.  Two
        threads missing the same pid race benignly: the loser discards
        its duplicate read and both counts stay exact (every driver read
        is a recorded miss).  If the pid was admitted *and evicted
        again* while our read was in flight (the eviction may have
        written a newer image to flash), the per-pid eviction generation
        has moved and the stale read is discarded and retried — never
        admitted over the newer durable state.
        """
        while True:
            with self._lock:
                page = self._frames.get(pid)
                if page is not None:
                    self.policy.touch(pid)
                    self.stats.hits += 1
                    if pin:
                        page.pin()
                    return page
                generation = self._evict_gen.get(pid, 0)
            data = self._driver_read_page(pid)
            with self._lock:
                page = self._frames.get(pid)
                if page is not None:
                    # Lost a concurrent-miss race; the read is duplicated.
                    self.policy.touch(pid)
                    self.stats.misses += 1
                    self.stats.read_races += 1
                    if pin:
                        page.pin()
                    return page
                if self._evict_gen.get(pid, 0) != generation:
                    # Admitted and evicted behind our back: retry.
                    self.stats.misses += 1
                    self.stats.read_races += 1
                    continue
                self.stats.misses += 1
                page = Page(pid, data)
                self._admit_locked(page)
                if pin:
                    page.pin()
                return page

    def pinned(self, pid: int) -> "_PinnedPage":
        """Context manager: fetch ``pid`` and hold it pinned.

        The lookup and the pin happen atomically under the pool lock, so
        the page cannot be evicted between them — the thread-safe
        replacement for ``pool.get_page(pid)`` + ``page.pin()``.
        """
        return _PinnedPage(self, pid)

    def create_page(self, pid: int, data: bytes) -> Page:
        """Materialize a brand-new logical page (not yet in flash).

        The page enters the pool dirty; its first eviction or flush
        performs the initial flash write.
        """
        with self._lock:
            if pid in self._frames:
                raise BufferError(f"page {pid} already buffered")
            page = Page(pid, data)
            page.dirty = True
            self._admit_locked(page)
            return page

    def __contains__(self, pid: int) -> bool:
        with self._lock:
            return pid in self._frames

    def __len__(self) -> int:
        with self._lock:
            return len(self._frames)

    @property
    def dirty_count(self) -> int:
        """Resident dirty pages (maintained by page notifications)."""
        with self._dirty_lock:
            return self._dirty_count

    def clear(self) -> int:
        """Drop every clean, unpinned frame; returns how many were dropped.

        Used after device-level repair (``Database.fsck``): cached page
        images may no longer match what the driver would serve, so the
        pool forgets them and re-reads on demand.  Dirty or pinned pages
        are kept — dropping unwritten changes or a page a client holds
        is never safe here.
        """
        with self._lock:
            while self._inflight:
                self._inflight_cond.wait()
            self._drain_reparks_locked()
            dropped = 0
            for pid, page in list(self._frames.items()):
                if page.dirty or page.pin_count > 0:
                    continue
                del self._frames[pid]
                self.policy.remove(pid)
                self._evict_gen[pid] = self._evict_gen.get(pid, 0) + 1
                dropped += 1
            return dropped

    # ------------------------------------------------------------------
    # Write-back
    # ------------------------------------------------------------------
    def flush_page(self, pid: int) -> None:
        with self._lock:
            while pid in self._inflight:
                # A background batch holds this page; wait it out rather
                # than double-writing the pid concurrently.
                self._inflight_cond.wait()
            page = self._frames.get(pid)
            if page is not None and page.dirty:
                self._write_back_locked(page)
                self.stats.flushes += 1

    def flush_all(self) -> None:
        """Write back every dirty page and the driver's own buffers.

        The durability point: the write-back daemon (if any) is paused
        and its in-flight batch joined first, then the remaining dirty
        pages go down in one batched driver call — through
        ``group_flush(pages=...)`` on a sharded driver, so the page
        writes and the per-shard buffer flushes fan out in a single
        join — in cold-to-hot policy order (LRU order, as always).
        Pages dirtied *while* the batch was in flight keep their
        residual logs and stay dirty; "flush returned" covers exactly
        the writes that completed before it was called, as it always
        did.
        """
        with self._flush_serial:
            daemon = self.writeback
            daemon_error = None
            if daemon is not None:
                # A daemon that died on a driver error left its batch
                # pages dirty; surface the error once, *after* flushing
                # everything synchronously — durability first.
                daemon_error, daemon.error = daemon.error, None
                daemon.pause()
            try:
                self._flush_all_inner()
            finally:
                if daemon is not None:
                    daemon.resume()
            if daemon_error is not None:
                raise daemon_error

    def _flush_all_inner(self) -> None:
        with self._lock:
            while self._inflight:
                self._inflight_cond.wait()
            self._drain_reparks_locked()
            dirty = [
                self._frames[pid]
                for pid in self.policy.iter_pids()
                if pid in self._frames and self._frames[pid].dirty
            ]
            if not dirty:
                self._driver_flush()
                return
            snapshots = [page.writeback_snapshot() for page in dirty]
            logs = None
            if self.driver.tightly_coupled:
                logs = {
                    page.pid: snap[1] for page, snap in zip(dirty, snapshots)
                }
            batch = [(page.pid, snap[0]) for page, snap in zip(dirty, snapshots)]
            group_flush = getattr(self.driver, "group_flush", None)
            if group_flush is not None:
                # One fan-out: per-shard page writes + buffer flush.
                if self._driver_lock is not None:
                    with self._driver_lock:
                        group_flush(pages=batch, update_logs=logs)
                else:
                    group_flush(pages=batch, update_logs=logs)
            else:
                self._driver_write_pages(batch, update_logs=logs)
                self._driver_flush()
            for page, snap in zip(dirty, snapshots):
                page.finish_writeback(snap[2], len(snap[1]))
                self.stats.flushes += 1

    def _write_back_locked(self, page: Page) -> None:
        """Synchronous single-page write-back (pool lock held).

        The page latch is held across the driver call, so a concurrent
        writer cannot slip a change between the snapshot and the log
        clear.
        """
        with page.latch:
            logs = page.change_log if self.driver.tightly_coupled else None
            self._driver_write_page(page.pid, page.data, logs)
            page.clear_log()

    # ------------------------------------------------------------------
    # Internals: admission and eviction
    # ------------------------------------------------------------------
    def _admit_locked(self, page: Page) -> None:
        while len(self._frames) >= self._capacity:
            self._evict_one_locked()
        self._frames[page.pid] = page
        self.policy.admit(page.pid)
        page.attach(self)

    def _evict_one_locked(self) -> None:
        while True:
            self._drain_reparks_locked()
            victim_pid = None
            if self.writeback is None:
                victim_pid = self.policy.select_victim(self._pin_evictable)
            else:
                # Fast path: drop a clean frame, no flash I/O at all.
                limit = max(CLEAN_SCAN_MIN, self._capacity // 8)
                victim_pid = self.policy.select_victim(
                    self._clean_evictable, limit=limit
                )
                if victim_pid is None:
                    # The daemon is behind the dirty rate: wake it and
                    # pay one synchronous write-back as the backstop.
                    self.stats.writeback_kicks += 1
                    self.writeback.kick()
                    victim_pid = self.policy.select_victim(
                        self._pin_evictable, include_parked=True
                    )
            if victim_pid is not None:
                self._evict_locked(victim_pid)
                return
            if self._inflight:
                # Everything reclaimable is pinned by an in-flight
                # write-back batch; it will unpin shortly.
                self.stats.pin_waits += 1
                self._inflight_cond.wait()
                continue
            raise BufferError("all buffer frames are pinned")

    def _evict_locked(self, pid: int) -> None:
        # The write-back decision reads the victim's *current* dirty
        # state, not the scan's verdict — a clean-scan candidate that a
        # racing writer dirtied in between still gets written back.
        # The frame is only removed after a successful write-back: a
        # raising driver abandons the eviction with the page still
        # dirty and resident instead of dropping it on the floor.
        victim = self._frames[pid]
        if victim.dirty:
            self.stats.dirty_evictions += 1
            self.stats.sync_writebacks += 1
            start = time.perf_counter()
            try:
                self._write_back_locked(victim)
            finally:
                self.stats.eviction_stalls.record(
                    (time.perf_counter() - start) * 1e6
                )
        else:
            self.stats.clean_reclaims += 1
            self.stats.eviction_stalls.record(0.0)
        del self._frames[pid]
        self.policy.remove(pid)
        self._evict_gen[pid] = self._evict_gen.get(pid, 0) + 1
        self.stats.evictions += 1
        victim.detach()

    def _pin_evictable(self, pid: int) -> bool:
        if self._frames[pid].pin_count != 0:
            self.stats.pinned_skips += 1
            return False
        return True

    def _clean_evictable(self, pid: int) -> bool:
        page = self._frames[pid]
        if page.pin_count != 0:
            self.stats.pinned_skips += 1
            return False
        return not page.dirty

    # ------------------------------------------------------------------
    # Page notifications (called under the page latch — leaf locks only)
    # ------------------------------------------------------------------
    def _page_dirtied(self, pid: int) -> None:
        with self._dirty_cond:
            self._dirty_count += 1
            if self.writeback is not None and self._dirty_count >= (
                self.writeback.config.high_pages(self._capacity)
            ):
                self.writeback.notify()

    def _page_cleaned(self, pid: int) -> None:
        with self._dirty_cond:
            self._dirty_count -= 1
            self._repark.append(pid)
            self._dirty_cond.notify_all()

    def _page_unpinned(self, pid: int) -> None:
        with self._dirty_lock:
            self._repark.append(pid)

    def _drain_reparks_locked(self) -> None:
        """Feed queued unpin/cleaned events to the policy's cursor."""
        with self._dirty_lock:
            if not self._repark:
                return
            pending, self._repark = self._repark, []
        for pid in pending:
            self.policy.unpark(pid)

    # ------------------------------------------------------------------
    # Background write-back support (called by the daemon)
    # ------------------------------------------------------------------
    def _claim_dirty_batch(self, max_pages: int) -> List[Page]:
        """Pin up to ``max_pages`` cold dirty pages for a flush batch."""
        batch: List[Page] = []
        with self._lock:
            self._drain_reparks_locked()
            for pid in self.policy.iter_pids():
                page = self._frames.get(pid)
                if page is None or not page.dirty or pid in self._inflight:
                    continue
                page.pin()  # blocks eviction while the batch is in flight
                self._inflight.add(pid)
                batch.append(page)
                if len(batch) >= max_pages:
                    break
        return batch

    def _finish_dirty_batch(self, snapshots, claimed: List[Page]) -> None:
        """Reconcile a flushed batch; always unpins every claimed page."""
        with self._lock:
            for page, _data, logs, version in snapshots:
                page.finish_writeback(version, len(logs))
                self.stats.writeback_pages += 1
            if snapshots:
                self.stats.writeback_batches += 1
            for page in claimed:
                self._inflight.discard(page.pid)
                page.unpin()
            self._inflight_cond.notify_all()

    # ------------------------------------------------------------------
    # Driver access (serialized for non-thread-safe drivers)
    # ------------------------------------------------------------------
    def _driver_read_page(self, pid: int) -> bytes:
        if self._driver_lock is not None:
            with self._driver_lock:
                return self.driver.read_page(pid)
        return self.driver.read_page(pid)

    def _driver_write_page(self, pid: int, data: bytes, logs) -> None:
        if self._driver_lock is not None:
            with self._driver_lock:
                self.driver.write_page(pid, data, update_logs=logs)
        else:
            self.driver.write_page(pid, data, update_logs=logs)

    def _driver_write_pages(self, pages, update_logs=None) -> None:
        if self._driver_lock is not None:
            with self._driver_lock:
                self.driver.write_pages(pages, update_logs=update_logs)
        else:
            self.driver.write_pages(pages, update_logs=update_logs)

    def _driver_flush(self) -> None:
        if self._driver_lock is not None:
            with self._driver_lock:
                self.driver.flush()
        else:
            self.driver.flush()

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def pages(self) -> Iterator[Page]:
        with self._lock:
            return iter(list(self._frames.values()))

    def pinned_count(self) -> int:
        """Currently pinned frames (pin-pressure gauge)."""
        with self._lock:
            return sum(1 for page in self._frames.values() if page.pin_count)

    def close(self) -> None:
        """Stop the write-back daemon (if any).  Idempotent.

        Does *not* flush — :meth:`repro.storage.db.Database.close`
        flushes first, then closes the pool, then the driver.
        """
        if self._closed:
            return
        self._closed = True
        if self.writeback is not None:
            self.writeback.stop()


class _PinnedPage:
    """Context manager returned by :meth:`BufferManager.pinned`."""

    __slots__ = ("_pool", "_pid", "_page")

    def __init__(self, pool: BufferManager, pid: int):
        self._pool = pool
        self._pid = pid
        self._page: Optional[Page] = None

    def __enter__(self) -> Page:
        self._page = self._pool.get_page(self._pid, pin=True)
        return self._page

    def __exit__(self, *exc_info) -> None:
        if self._page is not None:
            self._page.unpin()
            self._page = None
