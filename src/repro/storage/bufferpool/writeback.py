"""Watermark-driven background write-back for the buffer pool.

The flash-resident-cache line of work (arXiv:1208.0289) decouples cache
eviction from device writes: a flusher thread cleans dirty frames *ahead*
of demand so the eviction hot path almost always finds a clean frame to
drop for free.  :class:`WritebackDaemon` is that flusher:

* it sleeps until the pool's dirty count crosses the **high watermark**
  (or an eviction that found no clean frame kicks it);
* it then drains cold dirty pages down to the **low watermark**, in
  batches, through the driver's batched ``write_pages`` path — on a
  :class:`~repro.sharding.executor.ParallelShardedDriver` that single
  call groups the batch by shard and fans it out across the shard
  executor's workers, so an N-shard array cleans N batches of frames in
  the wall-clock time of one;
* the flash write happens **off every lock**: pages are pinned and
  snapshotted first (pin ⇒ the pool cannot evict them mid-flight), and
  reconciled afterwards — a page whose version moved while its snapshot
  was in flight keeps its residual log and stays dirty.

Ordering vs. crash semantics: the daemon only ever writes page images
that the client already completed (`Page.write` is atomic under the page
latch), and a durability point (``flush_all`` / ``Database.flush``)
first *pauses* the daemon, waits out its in-flight batch, then flushes
the remainder synchronously — so "flush returned" means exactly what it
meant without the daemon.  See ``docs/bufferpool.md``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .manager import BufferManager


@dataclass(frozen=True)
class WritebackConfig:
    """Tuning for one pool's background write-back.

    Watermarks are fractions of the pool capacity: the daemon wakes when
    the dirty count reaches ``high_watermark × capacity`` and drains cold
    dirty pages until it falls to ``low_watermark × capacity``, flushing
    at most ``max_batch_pages`` per driver call so one batch never
    monopolizes the shard executor.
    """

    high_watermark: float = 0.5
    low_watermark: float = 0.25
    max_batch_pages: int = 64

    def __post_init__(self) -> None:
        if not 0.0 < self.high_watermark <= 1.0:
            raise ValueError("high_watermark must be in (0, 1]")
        if not 0.0 <= self.low_watermark < self.high_watermark:
            raise ValueError("low_watermark must be in [0, high_watermark)")
        if self.max_batch_pages < 1:
            raise ValueError("max_batch_pages must be at least 1")

    def high_pages(self, capacity: int) -> int:
        return max(1, int(capacity * self.high_watermark))

    def low_pages(self, capacity: int) -> int:
        return min(int(capacity * self.low_watermark), self.high_pages(capacity) - 1)


def normalize_writeback(value) -> Optional[WritebackConfig]:
    """Coerce the ``writeback=`` knob into a config (or None for sync).

    Accepted: ``None``/``False``/``"sync"`` → synchronous write-back (the
    historical behaviour, no daemon); ``True``/``"background"`` → default
    watermarks; a :class:`WritebackConfig` → itself.
    """
    if value is None or value is False or value == "sync":
        return None
    if value is True or value == "background":
        return WritebackConfig()
    if isinstance(value, WritebackConfig):
        return value
    raise ValueError(
        f"writeback must be None, 'sync', 'background', True/False or a "
        f"WritebackConfig, got {value!r}"
    )


class WritebackDaemon:
    """The flusher thread bound to one :class:`BufferManager`."""

    def __init__(self, pool: "BufferManager", config: WritebackConfig):
        self._pool = pool
        self.config = config
        self._cond = pool._dirty_cond  # shared with the dirty counter
        self._stop = False
        self._kicked = False
        self._pause_depth = 0
        self._in_batch = False
        #: First driver exception raised inside the daemon, re-raised at
        #: the next durability point instead of dying silently.
        self.error: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._run, name="bufferpool-writeback", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------------
    # Signals (callers hold the dirty lock only where noted)
    # ------------------------------------------------------------------
    def notify(self) -> None:
        """Dirty count changed; caller already holds the dirty lock."""
        self._cond.notify_all()

    def kick(self) -> None:
        """Emergency wake from the eviction path (no clean frame left)."""
        with self._cond:
            self._kicked = True
            self._cond.notify_all()

    def pause(self) -> None:
        """Block new batches and wait out the in-flight one (re-entrant)."""
        with self._cond:
            self._pause_depth += 1
            while self._in_batch:
                self._cond.wait()

    def resume(self) -> None:
        with self._cond:
            if self._pause_depth > 0:
                self._pause_depth -= 1
            self._cond.notify_all()

    def stop(self) -> None:
        """Stop the thread; idempotent, pending batch completes first."""
        with self._cond:
            self._stop = True
            self._cond.notify_all()
        self._thread.join()

    @property
    def running(self) -> bool:
        return self._thread.is_alive()

    # ------------------------------------------------------------------
    # The flusher loop
    # ------------------------------------------------------------------
    def _should_run(self) -> bool:
        # Called with the dirty condition held: read the raw counter —
        # the public ``dirty_count`` property would re-take the
        # (non-reentrant) dirty lock and self-deadlock.
        pool = self._pool
        return pool._dirty_count >= self.config.high_pages(pool.capacity)

    def _run(self) -> None:
        while True:
            with self._cond:
                while not self._stop and (
                    self._pause_depth > 0
                    or (not self._kicked and not self._should_run())
                ):
                    self._cond.wait()
                if self._stop:
                    return
                self._kicked = False
                self._in_batch = True
            try:
                # Drain batch after batch until the dirty count reaches
                # the low watermark (or a pause/stop interrupts) — one
                # wake-up cleans the whole surplus, not one batch of it.
                while True:
                    flushed = self._flush_batch()
                    with self._cond:
                        if (
                            flushed == 0
                            or self._stop
                            or self._pause_depth > 0
                            or self._pool._dirty_count
                            <= self.config.low_pages(self._pool.capacity)
                        ):
                            break
            except BaseException as exc:  # surfaced at the next flush_all
                if self.error is None:
                    self.error = exc
                with self._cond:
                    self._in_batch = False
                    self._stop = True
                    self._cond.notify_all()
                return
            with self._cond:
                self._in_batch = False
                self._cond.notify_all()

    def _flush_batch(self) -> int:
        """Claim and flush one batch; returns the pages flushed."""
        pool = self._pool
        target = self.config.low_pages(pool.capacity)
        surplus = pool.dirty_count - target
        if surplus <= 0:
            return 0
        batch = pool._claim_dirty_batch(min(surplus, self.config.max_batch_pages))
        if not batch:
            return 0
        snapshots: List[Tuple] = []
        written = False
        try:
            for page in batch:
                data, logs, version = page.writeback_snapshot()
                snapshots.append((page, data, logs, version))
            update_logs = None
            if pool.driver.tightly_coupled:
                update_logs = {page.pid: logs for page, _d, logs, _v in snapshots}
            # The flash write itself: off every pool/page lock.  On a
            # parallel sharded driver this groups by shard and joins the
            # shard workers; only this daemon thread waits.
            pool._driver_write_pages(
                [(page.pid, data) for page, data, _l, _v in snapshots],
                update_logs=update_logs,
            )
            written = True
        finally:
            # On failure the snapshots never reached flash: pages are
            # unpinned but keep their dirty state and full logs.
            pool._finish_dirty_batch(snapshots if written else [], claimed=batch)
        return len(batch)
