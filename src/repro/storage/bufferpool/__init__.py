"""The buffer-pool subsystem: pluggable eviction, pinning, write-back.

Grown out of the original single-file LRU pool (``storage/buffer.py``,
which now re-exports from here): an eviction-policy registry mirroring
the GC victim-policy registry (``lru``, ``clock``, scan-resistant
``2q``), thread-safe frame pinning for many client threads over one
:class:`~repro.sharding.executor.ParallelShardedDriver`, and a
watermark-driven background write-back daemon that batches dirty pages
through the shard executor so hot-path evictions almost never wait on
flash.  See ``docs/bufferpool.md``.
"""

from .manager import BufferError, BufferManager
from .policy import (
    ClockPolicy,
    EvictionPolicy,
    LruPolicy,
    TwoQPolicy,
    eviction_policy_names,
    make_eviction_policy,
    register_eviction_policy,
)
from .stats import BufferStats
from .writeback import WritebackConfig, WritebackDaemon, normalize_writeback

__all__ = [
    "BufferError",
    "BufferManager",
    "BufferStats",
    "ClockPolicy",
    "EvictionPolicy",
    "LruPolicy",
    "TwoQPolicy",
    "WritebackConfig",
    "WritebackDaemon",
    "eviction_policy_names",
    "make_eviction_policy",
    "normalize_writeback",
    "register_eviction_policy",
]
