"""Pluggable buffer-pool eviction policies and their registry.

Mirrors the GC victim-policy registry of :mod:`repro.ftl.gc`: policies
are registered under a name, selected by
``Database.open(..., buffer_policy="2q")`` or
``BufferManager(..., policy="clock")``, and each pool gets a fresh
instance so stateful policies never share bookkeeping.

A policy tracks *which* resident page to reclaim next; the
:class:`~repro.storage.bufferpool.manager.BufferManager` owns the frames
themselves and consults the policy through a small contract:

* :meth:`EvictionPolicy.admit` / :meth:`~EvictionPolicy.touch` /
  :meth:`~EvictionPolicy.remove` maintain recency state;
* :meth:`EvictionPolicy.select_victim` scans candidates best-first and
  returns the first one the manager's ``evictable`` callback accepts —
  the callback is where pin counts and (for clean-first reclamation)
  dirtiness live, so policies never see :class:`Page` objects;
* :meth:`EvictionPolicy.iter_pids` yields the resident set coldest-first
  (write-back daemons flush cold dirty pages first; ``flush_all``
  preserves the historical LRU flush order through it).

Rejected candidates are *parked* by the LRU policy (the reclaim-cursor
fix: a pinned cold frame is skipped exactly once, not rescanned on every
subsequent eviction) and returned to the reclaim order via
:meth:`EvictionPolicy.unpark` when the manager learns the frame was
unpinned or cleaned.  Clock and 2Q revisit skipped frames naturally.

This module deliberately imports nothing from the flash or FTL layers
besides the shared :class:`~repro.ftl.errors.ConfigurationError`, so the
:class:`~repro.flash.cache.ReadCache` can reuse :class:`LruPolicy`
(one LRU implementation in the tree, not two).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, Iterator, List, Optional

from ...ftl.errors import ConfigurationError

#: The manager's verdict on one candidate: True = evict this frame now.
Evictable = Callable[[int], bool]


class EvictionPolicy:
    """Recency bookkeeping for one buffer pool (see module docstring)."""

    #: Registry name, set by subclasses.
    name: str = "abstract"

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("eviction policy capacity must be at least one frame")
        self.capacity = capacity
        #: Cheap per-policy introspection counters, surfaced through
        #: :attr:`BufferStats.policy_counters`.
        self.counters: Dict[str, int] = {}

    # -- state maintenance ---------------------------------------------
    def admit(self, pid: int) -> None:
        raise NotImplementedError

    def touch(self, pid: int) -> None:
        raise NotImplementedError

    def remove(self, pid: int) -> None:
        raise NotImplementedError

    def unpark(self, pid: int) -> None:
        """A previously rejected frame became reclaimable again (unpinned
        or cleaned).  Default: nothing parks, nothing to do."""

    def resize(self, capacity: int) -> None:
        """The pool capacity changed (the manager already evicted down)."""
        self.capacity = capacity

    # -- reclamation ----------------------------------------------------
    def select_victim(
        self,
        evictable: Evictable,
        limit: Optional[int] = None,
        include_parked: bool = False,
    ) -> Optional[int]:
        """Best reclaimable pid, or None.

        ``limit`` bounds how many candidates are offered to ``evictable``
        (clean-first passes stay cheap even when most of the pool is
        dirty).  ``include_parked`` additionally re-examines parked
        frames — the unbounded backstop pass uses it, since a parked
        frame may be evictable under the relaxed criteria.
        """
        raise NotImplementedError

    def iter_pids(self) -> Iterator[int]:
        """Resident pids, coldest-first (parked frames are coldest)."""
        raise NotImplementedError

    def _count(self, key: str, n: int = 1) -> None:
        self.counters[key] = self.counters.get(key, 0) + n


# ----------------------------------------------------------------------
# Registry (mirrors repro.ftl.gc's victim-policy registry)
# ----------------------------------------------------------------------
#: name -> factory taking the pool capacity, returning a fresh instance.
_POLICY_FACTORIES: Dict[str, Callable[[int], EvictionPolicy]] = {}


def register_eviction_policy(
    name: str, factory: Callable[[int], EvictionPolicy]
) -> None:
    """Register an eviction-policy factory under ``name`` (case-insensitive).

    Registered names are selectable through
    ``BufferManager(..., policy=name)`` and
    :meth:`repro.storage.db.Database.open`'s ``buffer_policy`` keyword.
    """
    _POLICY_FACTORIES[name.lower()] = factory


def make_eviction_policy(name: str, capacity: int) -> EvictionPolicy:
    """Build a fresh policy instance from its registered name."""
    factory = _POLICY_FACTORIES.get(name.lower())
    if factory is None:
        raise ConfigurationError(
            f"unknown eviction policy {name!r}; registered policies: "
            f"{', '.join(sorted(_POLICY_FACTORIES))}"
        )
    return factory(capacity)


def eviction_policy_names() -> tuple:
    """Registered policy names, sorted (for error messages and docs)."""
    return tuple(sorted(_POLICY_FACTORIES))


# ----------------------------------------------------------------------
# LRU (the historical default, with a parked-frame reclaim cursor)
# ----------------------------------------------------------------------
class LruPolicy(EvictionPolicy):
    """Least-recently-used with a parked-frame reclaim cursor.

    The resident order lives in one :class:`OrderedDict` (front =
    coldest) maintained exactly like the pre-package
    :class:`BufferManager`'s frame table, so victim choice and flush
    order are bit-identical to the original.  The difference is what
    happens to a *rejected* candidate: its pid enters the ``parked`` set
    and later scans step over it with a single hash probe instead of
    re-running the manager's pin/dirty verdict on every eviction — the
    O(pinned-cold-frames) rescan this policy exists to fix.  A parked
    frame rejoins the scan only on an :meth:`unpark` event (the manager
    forwards unpin/cleaned notifications) or a :meth:`touch`, which
    makes it MRU anyway.
    """

    name = "lru"

    def __init__(self, capacity: int):
        super().__init__(capacity)
        self._order: "OrderedDict[int, None]" = OrderedDict()
        self._parked: set = set()

    def admit(self, pid: int) -> None:
        self._order[pid] = None

    def touch(self, pid: int) -> None:
        self._order.move_to_end(pid)
        self._parked.discard(pid)

    def remove(self, pid: int) -> None:
        self._order.pop(pid, None)
        self._parked.discard(pid)

    def unpark(self, pid: int) -> None:
        self._parked.discard(pid)

    def select_victim(
        self,
        evictable: Evictable,
        limit: Optional[int] = None,
        include_parked: bool = False,
    ) -> Optional[int]:
        # Plain iteration, no copy: the loop only mutates the parked
        # *set*, never the order dict, and the common case returns at
        # the first candidate — copying the whole order would pay the
        # O(capacity)-per-eviction cost this cursor exists to avoid.
        offered = 0
        for pid in self._order:
            if not include_parked and pid in self._parked:
                continue
            if limit is not None and offered >= limit:
                return None
            offered += 1
            if evictable(pid):
                return pid
            if pid not in self._parked:
                self._parked.add(pid)
                self._count("parked")
        return None

    def iter_pids(self) -> Iterator[int]:
        return iter(list(self._order))


# ----------------------------------------------------------------------
# Clock (second-chance approximation of LRU)
# ----------------------------------------------------------------------
class ClockPolicy(EvictionPolicy):
    """The classic clock sweep: one reference bit per frame, a rotating
    hand that clears bits until it finds an unreferenced, evictable
    frame.  Rejected frames simply stay in the ring — the hand revisits
    them one full sweep later, which is the policy's own cursor."""

    name = "clock"

    def __init__(self, capacity: int):
        super().__init__(capacity)
        self._ring: List[Optional[int]] = []  # None = tombstone
        self._slot: Dict[int, int] = {}
        self._ref: Dict[int, bool] = {}
        self._hand = 0

    def admit(self, pid: int) -> None:
        self._slot[pid] = len(self._ring)
        self._ring.append(pid)
        self._ref[pid] = False  # first sweep may take a never-touched page

    def touch(self, pid: int) -> None:
        self._ref[pid] = True

    def remove(self, pid: int) -> None:
        slot = self._slot.pop(pid, None)
        if slot is not None:
            self._ring[slot] = None
            self._ref.pop(pid, None)
            self._maybe_compact()

    def select_victim(
        self,
        evictable: Evictable,
        limit: Optional[int] = None,
        include_parked: bool = False,
    ) -> Optional[int]:
        if not self._slot:
            return None
        offered = 0
        # Two full sweeps suffice: the first clears every set bit, the
        # second must then stop at any evictable frame.
        for _step in range(2 * len(self._ring)):
            if self._hand >= len(self._ring):
                self._hand = 0
            pid = self._ring[self._hand]
            self._hand += 1
            if pid is None:
                continue
            if self._ref.get(pid):
                self._ref[pid] = False
                self._count("ref_clears")
                continue
            if limit is not None and offered >= limit:
                return None
            offered += 1
            if evictable(pid):
                return pid
        return None

    def iter_pids(self) -> Iterator[int]:
        n = len(self._ring)
        for i in range(n):
            pid = self._ring[(self._hand + i) % n]
            if pid is not None:
                yield pid

    def _maybe_compact(self) -> None:
        if len(self._ring) < 16 or len(self._slot) * 2 > len(self._ring):
            return
        before_hand = sum(
            1 for pid in self._ring[: self._hand] if pid is not None
        )
        self._ring = [pid for pid in self._ring if pid is not None]
        self._slot = {pid: i for i, pid in enumerate(self._ring)}
        self._hand = before_hand


# ----------------------------------------------------------------------
# 2Q (scan-resistant; Johnson & Shasha, VLDB '94)
# ----------------------------------------------------------------------
class TwoQPolicy(EvictionPolicy):
    """Simplified full 2Q: a FIFO probation queue plus a protected LRU.

    First-time pages enter the FIFO ``A1in`` queue; a sequential table
    scan streams through it and evicts only other scan pages.  A page
    evicted from ``A1in`` leaves its pid in the ``A1out`` ghost list
    (no frame); a miss on a ghosted pid re-admits the page directly
    into the protected ``Am`` LRU — surviving long enough to be
    re-referenced is what proves a page is hot.  Victims come from
    ``A1in`` while it exceeds its share (``kin``), else from ``Am``.
    """

    name = "2q"

    def __init__(self, capacity: int):
        super().__init__(capacity)
        self._a1in: "OrderedDict[int, None]" = OrderedDict()
        self._a1out: "OrderedDict[int, None]" = OrderedDict()  # ghosts
        self._am: "OrderedDict[int, None]" = OrderedDict()
        self.resize(capacity)

    def resize(self, capacity: int) -> None:
        super().resize(capacity)
        #: The paper's tuning: probation ~25 % of frames, ghosts ~50 %.
        self.kin = max(1, capacity // 4)
        self.kout = max(2, capacity // 2)
        while len(self._a1out) > self.kout:
            self._a1out.popitem(last=False)

    def admit(self, pid: int) -> None:
        if pid in self._a1out:
            del self._a1out[pid]
            self._am[pid] = None  # ghost hit: straight into the hot LRU
            self._count("ghost_promotions")
        else:
            self._a1in[pid] = None

    def touch(self, pid: int) -> None:
        if pid in self._am:
            self._am.move_to_end(pid)
        # A hit inside A1in is deliberately ignored (FIFO): correlated
        # re-references during one scan must not look like heat.

    def remove(self, pid: int) -> None:
        if pid in self._a1in:
            # Evicted from probation: remember the pid as a ghost.
            del self._a1in[pid]
            self._a1out[pid] = None
            while len(self._a1out) > self.kout:
                self._a1out.popitem(last=False)
        else:
            self._am.pop(pid, None)

    def _queues(self) -> List["OrderedDict[int, None]"]:
        if len(self._a1in) >= self.kin or not self._am:
            return [self._a1in, self._am]
        return [self._am, self._a1in]

    def select_victim(
        self,
        evictable: Evictable,
        limit: Optional[int] = None,
        include_parked: bool = False,
    ) -> Optional[int]:
        # No copies: nothing in the loop mutates the queues (2Q parks
        # nothing; ghosting happens in remove(), after selection).
        offered = 0
        for queue in self._queues():
            for pid in queue:
                if limit is not None and offered >= limit:
                    return None
                offered += 1
                if evictable(pid):
                    return pid
        return None

    def iter_pids(self) -> Iterator[int]:
        for queue in self._queues():
            yield from list(queue)


register_eviction_policy("lru", LruPolicy)
register_eviction_policy("clock", ClockPolicy)
register_eviction_policy("2q", TwoQPolicy)
