"""A paged B+tree index with u64 keys and values.

Every node is one logical page accessed through the buffer pool, so index
traffic participates in the paper's I/O measurements exactly like heap
traffic.  Serialization writes only changed bytes (via
:meth:`Page.write_delta`), keeping update logs honest for the
tightly-coupled driver.

Node layout (little-endian)::

    header : u16 magic 0xB7EE | u8 is_leaf | u8 reserved | u16 n_keys
             | u16 reserved2 | u32 next_leaf (pid + 1, 0 = none)
    leaf   : n_keys × u64 key | n_keys × u64 value
    branch : n_keys × u64 key | (n_keys + 1) × u32 child pid

Semantics: upsert on duplicate key; deletion removes the key from its
leaf without rebalancing (underflowed leaves are served normally and
reclaimed only on page reuse), which matches the workloads here — TPC-C
deletes only NEW-ORDER entries, never enough to matter structurally.
"""

from __future__ import annotations

import struct
from bisect import bisect_left, bisect_right, insort
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

from .db import Database
from .page import Page

_HEADER = struct.Struct("<HBBHHI")
HEADER_SIZE = _HEADER.size  # 12
MAGIC = 0xB7EE
KEY_SIZE = 8
VALUE_SIZE = 8
CHILD_SIZE = 4


class BTreeError(RuntimeError):
    """Raised on malformed nodes or capacity misconfiguration."""


@dataclass
class _Node:
    """Deserialized node contents."""

    pid: int
    is_leaf: bool
    keys: List[int] = field(default_factory=list)
    values: List[int] = field(default_factory=list)  # leaf only
    children: List[int] = field(default_factory=list)  # branch only
    next_leaf: Optional[int] = None  # leaf only


class BTree:
    """A B+tree whose nodes live in database pages."""

    def __init__(self, db: Database, name: str = "index"):
        self.db = db
        self.name = name
        page_size = db.page_size
        self.leaf_capacity = (page_size - HEADER_SIZE) // (KEY_SIZE + VALUE_SIZE)
        self.branch_capacity = (page_size - HEADER_SIZE - CHILD_SIZE) // (
            KEY_SIZE + CHILD_SIZE
        )
        if self.leaf_capacity < 3 or self.branch_capacity < 3:
            raise BTreeError(
                f"page size {page_size} too small for a B+tree node"
            )
        root = self.db.allocate_page()
        self._write_node(_Node(pid=root.pid, is_leaf=True))
        self.root_pid = root.pid
        self.key_count = 0
        self.height = 1

    # ------------------------------------------------------------------
    # Public operations
    # ------------------------------------------------------------------
    def get(self, key: int) -> Optional[int]:
        """Value stored under ``key``, or None."""
        node = self._read_node(self._descend_to_leaf(key))
        idx = bisect_left(node.keys, key)
        if idx < len(node.keys) and node.keys[idx] == key:
            return node.values[idx]
        return None

    def insert(self, key: int, value: int) -> None:
        """Insert or overwrite (upsert) a key/value pair."""
        _check_u64(key, "key")
        _check_u64(value, "value")
        split = self._insert(self.root_pid, key, value)
        if split is not None:
            sep_key, right_pid = split
            new_root_page = self.db.allocate_page()
            new_root = _Node(
                pid=new_root_page.pid,
                is_leaf=False,
                keys=[sep_key],
                children=[self.root_pid, right_pid],
            )
            self._write_node(new_root)
            self.root_pid = new_root_page.pid
            self.height += 1

    def delete(self, key: int) -> bool:
        """Remove a key; returns True when it existed."""
        node = self._read_node(self._descend_to_leaf(key))
        idx = bisect_left(node.keys, key)
        if idx >= len(node.keys) or node.keys[idx] != key:
            return False
        node.keys.pop(idx)
        node.values.pop(idx)
        self._write_node(node)
        self.key_count -= 1
        return True

    def items(
        self, lo: Optional[int] = None, hi: Optional[int] = None
    ) -> Iterator[Tuple[int, int]]:
        """Yield ``(key, value)`` pairs with lo <= key < hi, in order."""
        start = lo if lo is not None else 0
        pid: Optional[int] = self._descend_to_leaf(start)
        while pid is not None:
            node = self._read_node(pid)
            begin = bisect_left(node.keys, start) if lo is not None else 0
            for idx in range(begin, len(node.keys)):
                key = node.keys[idx]
                if hi is not None and key >= hi:
                    return
                yield key, node.values[idx]
            lo = None  # only trim inside the first leaf
            pid = node.next_leaf

    def min_item(
        self, lo: Optional[int] = None, hi: Optional[int] = None
    ) -> Optional[Tuple[int, int]]:
        """Smallest entry in [lo, hi), or None."""
        for item in self.items(lo, hi):
            return item
        return None

    def __len__(self) -> int:
        return self.key_count

    def __contains__(self, key: int) -> bool:
        return self.get(key) is not None

    # ------------------------------------------------------------------
    # Insertion internals
    # ------------------------------------------------------------------
    def _insert(self, pid: int, key: int, value: int) -> Optional[Tuple[int, int]]:
        """Recursive insert; returns (separator, new right pid) on split."""
        node = self._read_node(pid)
        if node.is_leaf:
            return self._insert_into_leaf(node, key, value)
        idx = bisect_right(node.keys, key)
        split = self._insert(node.children[idx], key, value)
        if split is None:
            return None
        sep_key, right_pid = split
        node.keys.insert(idx, sep_key)
        node.children.insert(idx + 1, right_pid)
        if len(node.keys) <= self.branch_capacity:
            self._write_node(node)
            return None
        return self._split_branch(node)

    def _insert_into_leaf(
        self, node: _Node, key: int, value: int
    ) -> Optional[Tuple[int, int]]:
        idx = bisect_left(node.keys, key)
        if idx < len(node.keys) and node.keys[idx] == key:
            node.values[idx] = value  # upsert
            self._write_node(node)
            return None
        node.keys.insert(idx, key)
        node.values.insert(idx, value)
        self.key_count += 1
        if len(node.keys) <= self.leaf_capacity:
            self._write_node(node)
            return None
        return self._split_leaf(node)

    def _split_leaf(self, node: _Node) -> Tuple[int, int]:
        mid = len(node.keys) // 2
        right_page = self.db.allocate_page()
        right = _Node(
            pid=right_page.pid,
            is_leaf=True,
            keys=node.keys[mid:],
            values=node.values[mid:],
            next_leaf=node.next_leaf,
        )
        node.keys = node.keys[:mid]
        node.values = node.values[:mid]
        node.next_leaf = right.pid
        self._write_node(right)
        self._write_node(node)
        return right.keys[0], right.pid

    def _split_branch(self, node: _Node) -> Tuple[int, int]:
        mid = len(node.keys) // 2
        sep_key = node.keys[mid]
        right_page = self.db.allocate_page()
        right = _Node(
            pid=right_page.pid,
            is_leaf=False,
            keys=node.keys[mid + 1 :],
            children=node.children[mid + 1 :],
        )
        node.keys = node.keys[:mid]
        node.children = node.children[: mid + 1]
        self._write_node(right)
        self._write_node(node)
        return sep_key, right.pid

    # ------------------------------------------------------------------
    # Traversal / serialization
    # ------------------------------------------------------------------
    def _descend_to_leaf(self, key: int) -> int:
        pid = self.root_pid
        while True:
            node = self._read_node(pid)
            if node.is_leaf:
                return pid
            pid = node.children[bisect_right(node.keys, key)]

    def _read_node(self, pid: int) -> _Node:
        page = self.db.page(pid)
        magic, is_leaf, _r1, n_keys, _r2, next_raw = _HEADER.unpack_from(
            page.read(0, HEADER_SIZE), 0
        )
        if magic != MAGIC:
            raise BTreeError(f"page {pid} is not a B+tree node (magic 0x{magic:04X})")
        pos = HEADER_SIZE
        keys = list(struct.unpack_from(f"<{n_keys}Q", page.read(pos, n_keys * 8), 0))
        pos += n_keys * KEY_SIZE
        if is_leaf:
            values = list(
                struct.unpack_from(f"<{n_keys}Q", page.read(pos, n_keys * 8), 0)
            )
            return _Node(
                pid=pid,
                is_leaf=True,
                keys=keys,
                values=values,
                next_leaf=(next_raw - 1) if next_raw else None,
            )
        n_children = n_keys + 1
        children = list(
            struct.unpack_from(
                f"<{n_children}I", page.read(pos, n_children * 4), 0
            )
        )
        return _Node(pid=pid, is_leaf=False, keys=keys, children=children)

    def _write_node(self, node: _Node) -> None:
        n_keys = len(node.keys)
        parts = [
            _HEADER.pack(
                MAGIC,
                1 if node.is_leaf else 0,
                0,
                n_keys,
                0,
                (node.next_leaf + 1) if node.next_leaf is not None else 0,
            ),
            struct.pack(f"<{n_keys}Q", *node.keys),
        ]
        if node.is_leaf:
            parts.append(struct.pack(f"<{n_keys}Q", *node.values))
        else:
            parts.append(struct.pack(f"<{len(node.children)}I", *node.children))
        encoded = b"".join(parts)
        page = self.db.page(node.pid)
        page.write_delta(0, encoded)

    # ------------------------------------------------------------------
    # Validation (used by tests)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Assert ordering, fanout and leaf-chain invariants."""
        leaves: List[int] = []
        self._check_node(self.root_pid, None, None, leaves, is_root=True)
        chained = []
        pid: Optional[int] = leaves[0] if leaves else None
        while pid is not None:
            chained.append(pid)
            pid = self._read_node(pid).next_leaf
        if leaves != chained:
            raise BTreeError("leaf chain does not match tree order")

    def _check_node(
        self,
        pid: int,
        lo: Optional[int],
        hi: Optional[int],
        leaves: List[int],
        is_root: bool = False,
    ) -> None:
        node = self._read_node(pid)
        if node.keys != sorted(node.keys):
            raise BTreeError(f"node {pid} keys unsorted")
        for key in node.keys:
            if (lo is not None and key < lo) or (hi is not None and key >= hi):
                raise BTreeError(f"node {pid} key {key} outside ({lo}, {hi})")
        if node.is_leaf:
            if len(node.keys) > self.leaf_capacity:
                raise BTreeError(f"leaf {pid} overflows")
            leaves.append(pid)
            return
        if len(node.keys) > self.branch_capacity:
            raise BTreeError(f"branch {pid} overflows")
        if not is_root and len(node.keys) < 1:
            raise BTreeError(f"branch {pid} is empty")
        bounds = [lo] + node.keys + [hi]
        for child, (clo, chi) in zip(
            node.children, zip(bounds[:-1], bounds[1:])
        ):
            self._check_node(child, clo, chi, leaves)


def _check_u64(value: int, what: str) -> None:
    if not 0 <= value < (1 << 64):
        raise ValueError(f"{what} {value} outside u64 range")
