"""Mini-DBMS storage substrate (S7 in DESIGN.md).

A page-based storage engine standing in for the Odysseus ORDBMS storage
layer the paper used: a buffer-pool subsystem with pluggable eviction
policies and optional background write-back (:mod:`.bufferpool`),
change-log recording (the tightly-coupled hook), slotted pages, heap
files, and a paged B+tree.
"""

from .btree import BTree, BTreeError
from .bufferpool import (
    BufferError,
    BufferManager,
    BufferStats,
    EvictionPolicy,
    WritebackConfig,
    eviction_policy_names,
    make_eviction_policy,
    register_eviction_policy,
)
from .db import Database
from .heap import RID, HeapFile
from .page import Page
from .slotted import SlottedPage, SlottedPageError

__all__ = [
    "BTree",
    "BTreeError",
    "BufferError",
    "BufferManager",
    "BufferStats",
    "Database",
    "EvictionPolicy",
    "HeapFile",
    "Page",
    "RID",
    "SlottedPage",
    "SlottedPageError",
    "WritebackConfig",
    "eviction_policy_names",
    "make_eviction_policy",
    "register_eviction_policy",
]
