"""Mini-DBMS storage substrate (S7 in DESIGN.md).

A page-based storage engine standing in for the Odysseus ORDBMS storage
layer the paper used: buffer pool with write-back through any page-update
driver, change-log recording (the tightly-coupled hook), slotted pages,
heap files, and a paged B+tree.
"""

from .btree import BTree, BTreeError
from .buffer import BufferError, BufferManager, BufferStats
from .db import Database
from .heap import RID, HeapFile
from .page import Page
from .slotted import SlottedPage, SlottedPageError

__all__ = [
    "BTree",
    "BTreeError",
    "BufferError",
    "BufferManager",
    "BufferStats",
    "Database",
    "HeapFile",
    "Page",
    "RID",
    "SlottedPage",
    "SlottedPageError",
]
