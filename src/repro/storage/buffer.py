"""Compatibility shim: the buffer pool grew into :mod:`.bufferpool`.

The original single-file LRU pool lives on as the default configuration
of the package (``policy="lru"``, ``writeback=None`` — byte-identical
flash behaviour); import from :mod:`repro.storage.bufferpool` for the
policy registry and write-back machinery.
"""

from .bufferpool import BufferError, BufferManager, BufferStats

__all__ = ["BufferError", "BufferManager", "BufferStats"]
