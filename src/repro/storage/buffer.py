"""The DBMS buffer pool (LRU with write-back through a page-update driver).

The paper's Experiment 7 varies the DBMS buffer size from 0.1 % to 10 %
of the database and measures the flash I/O each page-update method incurs
on evictions and misses; this module is that buffer.

Evicting a dirty page calls ``driver.write_page`` with the page's
accumulated update logs — which only the tightly-coupled IPL driver
consumes — and a miss calls ``driver.read_page``.  The pool never touches
flash for hits, which is how ``N_updates_till_write > 1`` behaviour
arises naturally under locality.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional

from ..ftl.base import PageUpdateMethod
from .page import Page


class BufferError(RuntimeError):
    """Raised on pool misuse (e.g. all frames pinned)."""


@dataclass
class BufferStats:
    """Hit/miss accounting for one pool."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    dirty_evictions: int = 0
    flushes: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class BufferManager:
    """A fixed-capacity LRU buffer pool over a page-update driver."""

    def __init__(self, driver: PageUpdateMethod, capacity: int):
        if capacity < 1:
            raise ValueError("buffer capacity must be at least one page")
        self.driver = driver
        self.capacity = capacity
        self._frames: "OrderedDict[int, Page]" = OrderedDict()
        self.stats = BufferStats()

    # ------------------------------------------------------------------
    # Page access
    # ------------------------------------------------------------------
    def get_page(self, pid: int) -> Page:
        """Fetch a page, reading it from flash on a miss."""
        page = self._frames.get(pid)
        if page is not None:
            self._frames.move_to_end(pid)
            self.stats.hits += 1
            return page
        self.stats.misses += 1
        data = self.driver.read_page(pid)
        page = Page(pid, data)
        self._admit(page)
        return page

    def create_page(self, pid: int, data: bytes) -> Page:
        """Materialize a brand-new logical page (not yet in flash).

        The page enters the pool dirty; its first eviction or flush
        performs the initial flash write.
        """
        if pid in self._frames:
            raise BufferError(f"page {pid} already buffered")
        page = Page(pid, data)
        page.dirty = True
        self._admit(page)
        return page

    def __contains__(self, pid: int) -> bool:
        return pid in self._frames

    def __len__(self) -> int:
        return len(self._frames)

    # ------------------------------------------------------------------
    # Write-back
    # ------------------------------------------------------------------
    def flush_page(self, pid: int) -> None:
        page = self._frames.get(pid)
        if page is not None and page.dirty:
            self._write_back(page)
            self.stats.flushes += 1

    def flush_all(self) -> None:
        """Write back every dirty page and the driver's own buffers.

        Dirty pages go down in one :meth:`PageUpdateMethod.write_pages`
        call (LRU order, as before) so drivers can batch the flash I/O —
        PDL batches the base-page re-reads its differentials need.
        """
        dirty = [page for page in self._frames.values() if page.dirty]
        if dirty:
            logs = None
            if self.driver.tightly_coupled:
                logs = {page.pid: page.change_log for page in dirty}
            self.driver.write_pages(
                [(page.pid, page.data) for page in dirty], update_logs=logs
            )
            for page in dirty:
                page.clear_log()
                self.stats.flushes += 1
        self.driver.flush()

    def _write_back(self, page: Page) -> None:
        logs = page.change_log if self.driver.tightly_coupled else None
        self.driver.write_page(page.pid, page.data, update_logs=logs)
        page.clear_log()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _admit(self, page: Page) -> None:
        while len(self._frames) >= self.capacity:
            self._evict_one()
        self._frames[page.pid] = page

    def _evict_one(self) -> None:
        for pid, victim in self._frames.items():
            if victim.pin_count == 0:
                break
        else:
            raise BufferError("all buffer frames are pinned")
        del self._frames[pid]
        self.stats.evictions += 1
        if victim.dirty:
            self.stats.dirty_evictions += 1
            self._write_back(victim)

    def pages(self) -> Iterator[Page]:
        return iter(self._frames.values())
