"""Physical page addressing helpers.

The emulator addresses pages with a flat integer index
(``block * pages_per_block + page``), which keeps mapping tables compact
(plain ``dict[int, int]``) and cheap to copy.  :class:`PageAddress` is a
small convenience view for code and error messages that want the
``(block, page)`` decomposition.
"""

from __future__ import annotations

from typing import NamedTuple

from .errors import AddressError
from .spec import FlashSpec


class PageAddress(NamedTuple):
    """A physical page location decomposed into block and in-block page."""

    block: int
    page: int

    def flat(self, spec: FlashSpec) -> int:
        """Return the flat index of this address under ``spec``."""
        return self.block * spec.pages_per_block + self.page

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"b{self.block}:p{self.page}"


def split_address(addr: int, spec: FlashSpec) -> PageAddress:
    """Decompose a flat page index into ``(block, page)``.

    Raises :class:`AddressError` when the index is outside the chip.
    """
    if not 0 <= addr < spec.n_pages:
        raise AddressError(f"page address {addr} outside chip of {spec.n_pages} pages")
    return PageAddress(addr // spec.pages_per_block, addr % spec.pages_per_block)


def block_of(addr: int, spec: FlashSpec) -> int:
    """Return the block index containing flat page address ``addr``."""
    if not 0 <= addr < spec.n_pages:
        raise AddressError(f"page address {addr} outside chip of {spec.n_pages} pages")
    return addr // spec.pages_per_block


def page_range_of_block(block: int, spec: FlashSpec) -> range:
    """Return the flat page indices belonging to ``block``."""
    if not 0 <= block < spec.n_blocks:
        raise AddressError(f"block {block} outside chip of {spec.n_blocks} blocks")
    start = block * spec.pages_per_block
    return range(start, start + spec.pages_per_block)
