"""An LRU base-page read cache in front of the device backend.

Flash-resident caches (the extended-cache line of work, arXiv:1208.0289)
keep hot read traffic off the device; here a small RAM cache does the
same for the emulator's persistent :class:`~repro.flash.backend
.FileBackend`, whose reads are real syscalls.  PDL's hot read is the
*base page*: both PDL_Reading (step 1) and PDL_Writing (the
differential-producing re-read) fetch it, so only pages whose spare
decodes to :class:`~repro.flash.spare.PageType.BASE` are cached —
differential pages churn too fast to be worth the frames.

The cache is **off by default** (``FlashChip(..., read_cache_pages=N)``
turns it on) because a hit skips the Table-1 ``Tread`` charge: enabling
it changes the simulated cost model from "every read touches flash" to
"cached reads are RAM reads", which is the point, but must be an
explicit choice for paper-faithful experiments.  Hits and misses are
counted in :class:`~repro.flash.stats.FlashStats`.

Recency bookkeeping is the shared
:class:`~repro.storage.bufferpool.policy.LruPolicy` from the buffer-pool
subsystem — one LRU implementation in the tree, not a private
``OrderedDict`` copy.  The import is deferred to construction time:
:mod:`repro.flash.chip` imports this module, and the storage package
(which hosts the policy) imports the flash layer transitively, so a
module-level import here would be circular.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from .spare import SpareArea


class ReadCache:
    """Fixed-capacity LRU of ``addr -> (data, decoded spare)``.

    The cache keeps its own hit/miss counters alongside the chip-level
    ones in :class:`~repro.flash.stats.FlashStats` (which only meters
    chip ``read_page`` traffic); :meth:`clear` resets them together with
    the entries so a cleared cache never reports stale ratios.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("read cache capacity must be at least one page")
        from ..storage.bufferpool.policy import LruPolicy

        self.capacity = capacity
        self._policy = LruPolicy(capacity)
        self._entries: Dict[int, Tuple[bytes, SpareArea]] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, addr: int) -> bool:
        return addr in self._entries

    def get(self, addr: int) -> Optional[Tuple[bytes, SpareArea]]:
        entry = self._entries.get(addr)
        if entry is not None:
            self.hits += 1
            self._policy.touch(addr)
        else:
            self.misses += 1
        return entry

    def put(self, addr: int, data: bytes, spare: SpareArea) -> None:
        if addr in self._entries:
            self._policy.touch(addr)
        else:
            self._policy.admit(addr)
        self._entries[addr] = (data, spare)
        while len(self._entries) > self.capacity:
            victim = self._policy.select_victim(lambda _pid: True)
            assert victim is not None, "cache entries and policy diverged"
            self._policy.remove(victim)
            del self._entries[victim]

    def invalidate(self, addr: int) -> None:
        if self._entries.pop(addr, None) is not None:
            self._policy.remove(addr)

    def invalidate_range(self, start: int, stop: int) -> None:
        """Drop every cached page in ``[start, stop)`` (block erase)."""
        if len(self._entries) <= stop - start:
            for addr in list(self._entries):
                if start <= addr < stop:
                    self.invalidate(addr)
        else:
            for addr in range(start, stop):
                self.invalidate(addr)

    def clear(self) -> None:
        """Drop every entry and reset hit/miss bookkeeping."""
        self._entries.clear()
        self._policy = type(self._policy)(self.capacity)
        self.hits = 0
        self.misses = 0
