"""An LRU base-page read cache in front of the device backend.

Flash-resident caches (the extended-cache line of work, arXiv:1208.0289)
keep hot read traffic off the device; here a small RAM cache does the
same for the emulator's persistent :class:`~repro.flash.backend
.FileBackend`, whose reads are real syscalls.  PDL's hot read is the
*base page*: both PDL_Reading (step 1) and PDL_Writing (the
differential-producing re-read) fetch it, so only pages whose spare
decodes to :class:`~repro.flash.spare.PageType.BASE` are cached —
differential pages churn too fast to be worth the frames.

The cache is **off by default** (``FlashChip(..., read_cache_pages=N)``
turns it on) because a hit skips the Table-1 ``Tread`` charge: enabling
it changes the simulated cost model from "every read touches flash" to
"cached reads are RAM reads", which is the point, but must be an
explicit choice for paper-faithful experiments.  Hits and misses are
counted in :class:`~repro.flash.stats.FlashStats`.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple

from .spare import SpareArea


class ReadCache:
    """Fixed-capacity LRU of ``addr -> (data, decoded spare)``."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("read cache capacity must be at least one page")
        self.capacity = capacity
        self._entries: "OrderedDict[int, Tuple[bytes, SpareArea]]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, addr: int) -> bool:
        return addr in self._entries

    def get(self, addr: int) -> Optional[Tuple[bytes, SpareArea]]:
        entry = self._entries.get(addr)
        if entry is not None:
            self._entries.move_to_end(addr)
        return entry

    def put(self, addr: int, data: bytes, spare: SpareArea) -> None:
        self._entries[addr] = (data, spare)
        self._entries.move_to_end(addr)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def invalidate(self, addr: int) -> None:
        self._entries.pop(addr, None)

    def invalidate_range(self, start: int, stop: int) -> None:
        """Drop every cached page in ``[start, stop)`` (block erase)."""
        if len(self._entries) <= stop - start:
            for addr in list(self._entries):
                if start <= addr < stop:
                    del self._entries[addr]
        else:
            for addr in range(start, stop):
                self._entries.pop(addr, None)

    def clear(self) -> None:
        self._entries.clear()
