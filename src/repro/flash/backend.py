"""Device backends: where a chip's bits actually live.

:class:`~repro.flash.chip.FlashChip` enforces NAND *policy* — erase
before program, spare-program budgets, latencies, crash injection — but
delegates the *bits* to a :class:`DeviceBackend`.  Two implementations:

* :class:`MemoryBackend` — the original in-process store (Python lists);
  state dies with the process, which is fine for benchmarks and most
  tests;
* :class:`FileBackend` — a persistent single-file image, so a database
  written by one process can be recovered by the next via the paper's
  Figure-11 spare-area scan (Section 5's "from flash alone" claim needs
  durable media, not resident state).

A backend is deliberately dumber than a chip: it stores raw page images,
raw spare areas, per-page program counters and per-block erase counts,
and answers batched reads/writes.  "Erased" is represented by a zero
program counter, never by content — which lets the file image keep its
data region sparse (an erased page is never read from disk) and makes a
block erase a tiny metadata write instead of a data-region rewrite.

File image layout (little-endian, struct-packed)::

    [0:64]    header: magic "PDLFLSH1", version u16, n_blocks u32,
              pages_per_block u32, page_data_size u32, page_spare_size
              u32, reserved 0xFF padding
    [64:..]   erase counts    u32 × n_blocks
    [..:..]   page meta       (data_programs u8, spare_programs u8) × n_pages
    [..:..]   data region     page_data_size × n_pages
    [..:..]   spare region    page_spare_size × n_pages

Data areas and spare areas live in *separate* contiguous regions so the
recovery scan — which touches every spare area but almost no data areas —
reads one sequential run instead of seeking past 2 KB of data per page.
The file is opened unbuffered: a completed write has reached the OS
before the call returns, so a process that dies (even via ``os._exit``)
loses nothing it was told was written.  ``sync()`` additionally calls
``fsync`` for power-loss durability.
"""

from __future__ import annotations

import os
import random
import struct
from abc import ABC, abstractmethod
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .errors import AddressError
from .spare import CHECKSUM_HEADER_SIZE
from .spec import FlashSpec

MAGIC = b"PDLFLSH1"
FORMAT_VERSION = 1

_HEADER = struct.Struct("<8sHIIII")
HEADER_SIZE = 64

#: Bytes of per-page metadata: (data_programs, spare_programs).
_META_SIZE = 2


class BackendError(RuntimeError):
    """Raised when a backend image is missing, corrupt, or mismatched."""


class DeviceBackend(ABC):
    """Raw page store behind a :class:`~repro.flash.chip.FlashChip`.

    All addresses are flat page addresses in ``[0, spec.n_pages)`` and
    all payloads are *raw* encoded bytes (full data-area and spare-area
    images); callers are trusted to have validated NAND legality.
    ``None`` data/spare means erased.
    """

    spec: FlashSpec

    # ------------------------------------------------------------------
    # Single-page operations
    # ------------------------------------------------------------------
    @abstractmethod
    def read_data(self, addr: int) -> Optional[bytes]:
        """Raw data-area image, or ``None`` when erased."""

    @abstractmethod
    def read_spare(self, addr: int) -> Optional[bytes]:
        """Raw spare-area image, or ``None`` when erased."""

    @abstractmethod
    def program_page(self, addr: int, data: bytes, spare: bytes) -> None:
        """Store a full page (data + spare); program counters become 1/1."""

    @abstractmethod
    def write_data(self, addr: int, data: bytes, programs: int) -> None:
        """Store an updated data-area image (partial-program result) and
        the new data-program count."""

    @abstractmethod
    def write_spare(self, addr: int, spare: bytes, programs: int) -> None:
        """Store a re-programmed spare area and the new spare-program
        count (obsolete marks travel through here)."""

    @abstractmethod
    def erase_block(self, block: int) -> None:
        """Reset every page of the block to erased; bump the erase count."""

    # ------------------------------------------------------------------
    # Batched operations (the hot path)
    # ------------------------------------------------------------------
    @abstractmethod
    def read_pages(
        self, addrs: Sequence[int]
    ) -> List[Tuple[Optional[bytes], Optional[bytes]]]:
        """Raw ``(data, spare)`` pairs for many pages in one call."""

    @abstractmethod
    def read_spares(self, addrs: Sequence[int]) -> List[Optional[bytes]]:
        """Raw spare areas for many pages in one call (recovery scans)."""

    @abstractmethod
    def program_pages(self, items: Sequence[Tuple[int, bytes, bytes]]) -> None:
        """Store many full pages — ``(addr, data, spare)`` — in one call."""

    # ------------------------------------------------------------------
    # Counters and enumeration
    # ------------------------------------------------------------------
    @abstractmethod
    def data_programs(self, addr: int) -> int:
        """Programs applied to the data area since the last erase."""

    @abstractmethod
    def spare_programs(self, addr: int) -> int:
        """Programs applied to the spare area since the last erase."""

    @abstractmethod
    def erase_count(self, block: int) -> int:
        """Lifetime erase count of the block (wear)."""

    @abstractmethod
    def is_block_erased(self, block: int) -> bool:
        """True when no page of the block has been programmed."""

    @abstractmethod
    def iter_programmed(self) -> Iterator[int]:
        """Flat addresses of all pages with a programmed spare area."""

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def sync(self) -> None:
        """Force written state to durable media (no-op in memory)."""

    def close(self) -> None:
        """Release resources; the backend must not be used afterwards."""

    # ------------------------------------------------------------------
    # Shared validation
    # ------------------------------------------------------------------
    def _check_addr(self, addr: int) -> None:
        if not 0 <= addr < self.spec.n_pages:
            raise AddressError(
                f"page address {addr} outside chip of {self.spec.n_pages} pages"
            )

    def _check_block(self, block: int) -> None:
        if not 0 <= block < self.spec.n_blocks:
            raise AddressError(
                f"block {block} outside chip of {self.spec.n_blocks}"
            )


class MemoryBackend(DeviceBackend):
    """The original volatile store: plain Python lists."""

    def __init__(self, spec: FlashSpec) -> None:
        self.spec = spec
        self._data: List[Optional[bytes]] = [None] * spec.n_pages
        self._spare: List[Optional[bytes]] = [None] * spec.n_pages
        self._data_programs: List[int] = [0] * spec.n_pages
        self._spare_programs: List[int] = [0] * spec.n_pages
        self._erase_counts: List[int] = [0] * spec.n_blocks

    # -- single-page ---------------------------------------------------
    def read_data(self, addr: int) -> Optional[bytes]:
        self._check_addr(addr)
        return self._data[addr]

    def read_spare(self, addr: int) -> Optional[bytes]:
        self._check_addr(addr)
        return self._spare[addr]

    def program_page(self, addr: int, data: bytes, spare: bytes) -> None:
        self._check_addr(addr)
        self._data[addr] = bytes(data)
        self._spare[addr] = bytes(spare)
        self._data_programs[addr] = 1
        self._spare_programs[addr] = 1

    def write_data(self, addr: int, data: bytes, programs: int) -> None:
        self._check_addr(addr)
        self._data[addr] = bytes(data)
        self._data_programs[addr] = programs

    def write_spare(self, addr: int, spare: bytes, programs: int) -> None:
        self._check_addr(addr)
        self._spare[addr] = bytes(spare)
        self._spare_programs[addr] = programs

    def erase_block(self, block: int) -> None:
        self._check_block(block)
        start = block * self.spec.pages_per_block
        for addr in range(start, start + self.spec.pages_per_block):
            self._data[addr] = None
            self._spare[addr] = None
            self._data_programs[addr] = 0
            self._spare_programs[addr] = 0
        self._erase_counts[block] += 1

    # -- batched -------------------------------------------------------
    def read_pages(
        self, addrs: Sequence[int]
    ) -> List[Tuple[Optional[bytes], Optional[bytes]]]:
        for a in addrs:
            self._check_addr(a)
        data, spare = self._data, self._spare
        return [(data[a], spare[a]) for a in addrs]

    def read_spares(self, addrs: Sequence[int]) -> List[Optional[bytes]]:
        for a in addrs:
            self._check_addr(a)
        spare = self._spare
        return [spare[a] for a in addrs]

    def program_pages(self, items: Sequence[Tuple[int, bytes, bytes]]) -> None:
        for addr, data, spare in items:
            self.program_page(addr, data, spare)

    # -- counters / enumeration ----------------------------------------
    def data_programs(self, addr: int) -> int:
        self._check_addr(addr)
        return self._data_programs[addr]

    def spare_programs(self, addr: int) -> int:
        self._check_addr(addr)
        return self._spare_programs[addr]

    def erase_count(self, block: int) -> int:
        self._check_block(block)
        return self._erase_counts[block]

    def is_block_erased(self, block: int) -> bool:
        self._check_block(block)
        start = block * self.spec.pages_per_block
        return all(
            self._data_programs[a] == 0 and self._spare_programs[a] == 0
            for a in range(start, start + self.spec.pages_per_block)
        )

    def iter_programmed(self) -> Iterator[int]:
        for addr, raw in enumerate(self._spare):
            if raw is not None:
                yield addr


class FileBackend(DeviceBackend):
    """A persistent chip image in a single on-disk file.

    Construct with :meth:`create` (new image; fails when the file
    exists) or :meth:`open` (existing image; validates the header).  The
    bare constructor opens-or-creates, which is what
    :meth:`repro.storage.db.Database.open` wants.

    The data region is kept sparse: the truth about whether a page is
    erased lives in the per-page program counters, so an erase writes
    ``2 × pages_per_block`` bytes of metadata and never touches the data
    region, and reads of erased pages never touch the disk at all.

    The metadata region (program counters + erase counts — a few bytes
    per page) is mirrored in RAM with write-through: it is read from
    disk once at open, every update goes to both copies, and all lookups
    are served from the mirror.  Durability is unaffected (the disk copy
    is always current) and the common case — checking whether a page is
    programmed before touching its data — costs no I/O.
    """

    def __init__(
        self, path: "str | os.PathLike[str]", spec: Optional[FlashSpec] = None
    ) -> None:
        self.path = os.fspath(path)
        if os.path.exists(self.path):
            self._open_existing(spec)
        else:
            if spec is None:
                raise BackendError(
                    f"no image at {self.path!r} and no spec to create one"
                )
            self._create_new(spec)

    # ------------------------------------------------------------------
    # Explicit constructors
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, path: "str | os.PathLike", spec: FlashSpec) -> "FileBackend":
        if os.path.exists(os.fspath(path)):
            raise BackendError(f"image {os.fspath(path)!r} already exists")
        return cls(path, spec)

    @classmethod
    def open(
        cls, path: "str | os.PathLike", spec: Optional[FlashSpec] = None
    ) -> "FileBackend":
        if not os.path.exists(os.fspath(path)):
            raise BackendError(f"no image at {os.fspath(path)!r}")
        return cls(path, spec)

    # ------------------------------------------------------------------
    # Image creation / opening
    # ------------------------------------------------------------------
    def _layout(self, spec: FlashSpec) -> None:
        self.spec = spec
        self._erase_off = HEADER_SIZE
        self._meta_off = self._erase_off + 4 * spec.n_blocks
        self._data_off = self._meta_off + _META_SIZE * spec.n_pages
        self._spare_off = self._data_off + spec.page_data_size * spec.n_pages
        self._size = self._spare_off + spec.page_spare_size * spec.n_pages

    def _create_new(self, spec: FlashSpec) -> None:
        self._layout(spec)
        header = _HEADER.pack(
            MAGIC,
            FORMAT_VERSION,
            spec.n_blocks,
            spec.pages_per_block,
            spec.page_data_size,
            spec.page_spare_size,
        )
        header += b"\xff" * (HEADER_SIZE - len(header))
        # O_EXCL-free create: callers wanting exclusivity use create().
        self._file = open(self.path, "w+b", buffering=0)
        self._file.write(header)
        # Zeroed counters mean "everything erased"; truncate leaves the
        # data and spare regions sparse.
        self._file.write(bytes(4 * spec.n_blocks + _META_SIZE * spec.n_pages))
        self._file.truncate(self._size)
        self._meta_mirror = bytearray(_META_SIZE * spec.n_pages)
        self._erase_mirror = [0] * spec.n_blocks

    def _open_existing(self, spec: Optional[FlashSpec]) -> None:
        self._file = open(self.path, "r+b", buffering=0)
        raw = self._file.read(HEADER_SIZE)
        if len(raw) < _HEADER.size:
            raise BackendError(f"image {self.path!r} too short for a header")
        magic, version, n_blocks, ppb, data_size, spare_size = _HEADER.unpack_from(
            raw, 0
        )
        if magic != MAGIC:
            raise BackendError(f"image {self.path!r} has bad magic {magic!r}")
        if version != FORMAT_VERSION:
            raise BackendError(
                f"image {self.path!r} is format v{version}, "
                f"expected v{FORMAT_VERSION}"
            )
        if spec is None:
            # Geometry comes from the image; timings use spec defaults.
            spec = FlashSpec(
                n_blocks=n_blocks,
                pages_per_block=ppb,
                page_data_size=data_size,
                page_spare_size=spare_size,
            )
        else:
            stored = (n_blocks, ppb, data_size, spare_size)
            given = (
                spec.n_blocks,
                spec.pages_per_block,
                spec.page_data_size,
                spec.page_spare_size,
            )
            if stored != given:
                raise BackendError(
                    f"image {self.path!r} geometry {stored} does not match "
                    f"requested spec geometry {given}"
                )
        self._layout(spec)
        raw_counts = self._read_at(self._erase_off, 4 * spec.n_blocks)
        self._erase_mirror = list(
            struct.unpack(f"<{spec.n_blocks}I", raw_counts)
        )
        self._meta_mirror = bytearray(
            self._read_at(self._meta_off, _META_SIZE * spec.n_pages)
        )

    # ------------------------------------------------------------------
    # Raw file I/O helpers
    # ------------------------------------------------------------------
    def _read_at(self, offset: int, size: int) -> bytes:
        self._file.seek(offset)
        buf = self._file.read(size)
        if len(buf) != size:
            raise BackendError(
                f"short read at {offset} in {self.path!r}: "
                f"wanted {size}, got {len(buf)}"
            )
        return buf

    def _write_at(self, offset: int, payload: bytes) -> None:
        self._file.seek(offset)
        self._file.write(payload)

    def _meta(self, addr: int) -> Tuple[int, int]:
        base = _META_SIZE * addr
        return self._meta_mirror[base], self._meta_mirror[base + 1]

    def _set_meta(self, addr: int, data_programs: int, spare_programs: int) -> None:
        payload = bytes((min(data_programs, 0xFF), min(spare_programs, 0xFF)))
        self._meta_mirror[_META_SIZE * addr : _META_SIZE * (addr + 1)] = payload
        self._write_at(self._meta_off + _META_SIZE * addr, payload)

    # -- single-page ---------------------------------------------------
    def read_data(self, addr: int) -> Optional[bytes]:
        self._check_addr(addr)
        if self._meta(addr)[0] == 0:
            return None
        size = self.spec.page_data_size
        return self._read_at(self._data_off + size * addr, size)

    def read_spare(self, addr: int) -> Optional[bytes]:
        self._check_addr(addr)
        if self._meta(addr)[1] == 0:
            return None
        size = self.spec.page_spare_size
        return self._read_at(self._spare_off + size * addr, size)

    def program_page(self, addr: int, data: bytes, spare: bytes) -> None:
        self._check_addr(addr)
        self._write_at(self._data_off + self.spec.page_data_size * addr, data)
        self._write_at(self._spare_off + self.spec.page_spare_size * addr, spare)
        self._set_meta(addr, 1, 1)

    def write_data(self, addr: int, data: bytes, programs: int) -> None:
        self._check_addr(addr)
        spare_programs = self._meta(addr)[1]
        self._write_at(self._data_off + self.spec.page_data_size * addr, data)
        self._set_meta(addr, programs, spare_programs)

    def write_spare(self, addr: int, spare: bytes, programs: int) -> None:
        self._check_addr(addr)
        data_programs = self._meta(addr)[0]
        self._write_at(self._spare_off + self.spec.page_spare_size * addr, spare)
        self._set_meta(addr, data_programs, programs)

    def erase_block(self, block: int) -> None:
        self._check_block(block)
        ppb = self.spec.pages_per_block
        start = block * ppb
        # One metadata write resets the whole block to "erased"; the
        # stale data/spare bytes are unreachable behind zero counters.
        zeros = bytes(_META_SIZE * ppb)
        self._meta_mirror[_META_SIZE * start : _META_SIZE * (start + ppb)] = zeros
        self._write_at(self._meta_off + _META_SIZE * start, zeros)
        self._erase_mirror[block] += 1
        self._write_at(
            self._erase_off + 4 * block, struct.pack("<I", self._erase_mirror[block])
        )

    # -- batched -------------------------------------------------------
    def read_pages(
        self, addrs: Sequence[int]
    ) -> List[Tuple[Optional[bytes], Optional[bytes]]]:
        metas = self._meta_run(addrs)
        out: List[Tuple[Optional[bytes], Optional[bytes]]] = []
        data_size = self.spec.page_data_size
        spare_size = self.spec.page_spare_size
        for _addr, (dp, sp), data_buf, spare_buf in zip(
            addrs,
            metas,
            self._region_run(addrs, self._data_off, data_size),
            self._region_run(addrs, self._spare_off, spare_size),
        ):
            out.append(
                (data_buf if dp else None, spare_buf if sp else None)
            )
        return out

    def read_spares(self, addrs: Sequence[int]) -> List[Optional[bytes]]:
        metas = self._meta_run(addrs)
        spare_size = self.spec.page_spare_size
        return [
            buf if sp else None
            for (_dp, sp), buf in zip(
                metas, self._region_run(addrs, self._spare_off, spare_size)
            )
        ]

    def program_pages(self, items: Sequence[Tuple[int, bytes, bytes]]) -> None:
        # Coalesce contiguous address runs into single writes per region;
        # allocation is sequential within a block, so flushes, GC
        # relocations and bulk loads almost always form one run.
        for run in _contiguous_runs(items):
            start = run[0][0]
            self._write_at(
                self._data_off + self.spec.page_data_size * start,
                b"".join(data for _a, data, _s in run),
            )
            self._write_at(
                self._spare_off + self.spec.page_spare_size * start,
                b"".join(spare for _a, _d, spare in run),
            )
            ones = b"\x01\x01" * len(run)
            self._meta_mirror[
                _META_SIZE * start : _META_SIZE * (start + len(run))
            ] = ones
            self._write_at(self._meta_off + _META_SIZE * start, ones)

    def _meta_run(self, addrs: Sequence[int]) -> List[Tuple[int, int]]:
        """Per-page meta for many pages (served from the RAM mirror)."""
        out: List[Tuple[int, int]] = []
        for start, count in _address_runs(addrs):
            self._check_addr(start)
            self._check_addr(start + count - 1)
            raw = self._meta_mirror[_META_SIZE * start : _META_SIZE * (start + count)]
            out.extend(
                (raw[2 * i], raw[2 * i + 1]) for i in range(count)
            )
        return out

    def _region_run(
        self, addrs: Sequence[int], region_off: int, item_size: int
    ) -> List[bytes]:
        """Raw images for many pages from one region, coalescing runs."""
        out: List[bytes] = []
        for start, count in _address_runs(addrs):
            raw = self._read_at(region_off + item_size * start, item_size * count)
            out.extend(
                raw[i * item_size : (i + 1) * item_size] for i in range(count)
            )
        return out

    # -- counters / enumeration ----------------------------------------
    def data_programs(self, addr: int) -> int:
        self._check_addr(addr)
        return self._meta(addr)[0]

    def spare_programs(self, addr: int) -> int:
        self._check_addr(addr)
        return self._meta(addr)[1]

    def erase_count(self, block: int) -> int:
        self._check_block(block)
        return self._erase_mirror[block]

    def is_block_erased(self, block: int) -> bool:
        self._check_block(block)
        ppb = self.spec.pages_per_block
        start = _META_SIZE * block * ppb
        raw = self._meta_mirror[start : start + _META_SIZE * ppb]
        return raw.count(0) == len(raw)

    def iter_programmed(self) -> Iterator[int]:
        raw = self._meta_mirror
        for addr in range(self.spec.n_pages):
            if raw[2 * addr + 1]:
                yield addr

    # -- lifecycle -----------------------------------------------------
    def sync(self) -> None:
        self._file.flush()
        os.fsync(self._file.fileno())

    def close(self) -> None:
        if not self._file.closed:
            self.sync()
            self._file.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<FileBackend {self.path!r} {self.spec.n_pages} pages>"


#: Fault kinds :class:`FaultInjector` can inject, in dispatch order.
FAULT_KINDS = ("bit_rot", "misdirected_write", "torn_spare")


class FaultInjectionError(RuntimeError):
    """An injection request targets a page that cannot host the fault
    (e.g. bit-rotting an erased page, which has no stored bits)."""


class FaultInjector(DeviceBackend):
    """A :class:`DeviceBackend` wrapper that corrupts pages on demand.

    Models the single-page failure classes of Graefe & Kuno on top of
    *either* backend by delegating every normal operation to ``inner``
    and mutating stored images directly when a fault is injected:

    * **bit rot** — flip bits inside a programmed data area;
    * **misdirected write** — replace a page's data *and* spare with
      another page's images, as if the donor's program pulse landed on
      the wrong word line (the result is internally consistent — its
      checksum still matches — so detection needs the mapping layer);
    * **torn spare program** — a spare program that stopped partway:
      bytes past the tear point revert to erased ``0xFF``.

    Injections bypass NAND legality on purpose (corruption is not a
    legal program) and never touch program counters or erase counts —
    the device believes the page is healthily programmed, which is
    exactly what makes the damage silent until a read verifies it.

    All randomness comes from one :class:`random.Random` seeded at
    construction, so a fault sequence is reproducible run-to-run.
    """

    def __init__(self, inner: DeviceBackend, seed: int = 0) -> None:
        self.inner = inner
        self.spec = inner.spec
        self._rng = random.Random(seed)
        self.injected: Dict[str, int] = {kind: 0 for kind in FAULT_KINDS}
        #: (kind, addr) in injection order, for test assertions.
        self.fault_log: List[Tuple[str, int]] = []

    # ------------------------------------------------------------------
    # Fault injection API
    # ------------------------------------------------------------------
    def inject(self, kind: str, addr: int, **kwargs: object) -> None:
        """Inject one fault of ``kind`` at page ``addr``."""
        if kind not in FAULT_KINDS:
            raise FaultInjectionError(
                f"unknown fault kind {kind!r}; choose from {FAULT_KINDS}"
            )
        getattr(self, f"inject_{kind}")(addr, **kwargs)

    def inject_bit_rot(self, addr: int, n_bits: int = 1) -> None:
        """Flip ``n_bits`` distinct bits in a programmed data area."""
        self._check_addr(addr)
        data = self.inner.read_data(addr)
        if data is None:
            raise FaultInjectionError(f"page {addr} has no programmed data to rot")
        if not 1 <= n_bits <= len(data) * 8:
            raise FaultInjectionError(f"cannot flip {n_bits} bits in {len(data)} bytes")
        rotted = bytearray(data)
        for position in self._rng.sample(range(len(data) * 8), n_bits):
            rotted[position // 8] ^= 1 << (position % 8)
        self.inner.write_data(addr, bytes(rotted), self.inner.data_programs(addr))
        self._record("bit_rot", addr)

    def inject_misdirected_write(self, addr: int, donor: Optional[int] = None) -> None:
        """Overwrite ``addr`` with another programmed page's data + spare.

        ``donor`` defaults to a deterministic pick among the other
        programmed pages.  The victim ends up holding a page that is
        self-consistent but belongs somewhere else entirely.
        """
        self._check_addr(addr)
        if donor is None:
            candidates = [a for a in self.inner.iter_programmed() if a != addr]
            if not candidates:
                raise FaultInjectionError(
                    "no programmed page available to misdirect from"
                )
            donor = self._rng.choice(candidates)
        self._check_addr(donor)
        data = self.inner.read_data(donor)
        spare = self.inner.read_spare(donor)
        if data is None or spare is None:
            raise FaultInjectionError(f"donor page {donor} is not fully programmed")
        self.inner.write_data(addr, data, max(1, self.inner.data_programs(addr)))
        self.inner.write_spare(addr, spare, max(1, self.inner.spare_programs(addr)))
        self._record("misdirected_write", addr)

    def inject_torn_spare(self, addr: int, tear_at: Optional[int] = None) -> None:
        """Truncate a spare program: bytes past ``tear_at`` revert to 0xFF.

        The default tear point falls inside the meaningful header+checksum
        prefix (bytes 1..19), where a torn program actually loses
        information — tearing inside the padding would be a no-op.
        """
        self._check_addr(addr)
        spare = self.inner.read_spare(addr)
        if spare is None:
            raise FaultInjectionError(f"page {addr} has no programmed spare to tear")
        if tear_at is None:
            limit = min(len(spare), CHECKSUM_HEADER_SIZE)
            tear_at = self._rng.randrange(1, limit)
        if not 0 <= tear_at <= len(spare):
            raise FaultInjectionError(
                f"tear point {tear_at} outside spare of {len(spare)} bytes"
            )
        torn = spare[:tear_at] + b"\xff" * (len(spare) - tear_at)
        self.inner.write_spare(addr, torn, self.inner.spare_programs(addr))
        self._record("torn_spare", addr)

    def _record(self, kind: str, addr: int) -> None:
        self.injected[kind] += 1
        self.fault_log.append((kind, addr))

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    # ------------------------------------------------------------------
    # DeviceBackend delegation
    # ------------------------------------------------------------------
    def read_data(self, addr: int) -> Optional[bytes]:
        return self.inner.read_data(addr)

    def read_spare(self, addr: int) -> Optional[bytes]:
        return self.inner.read_spare(addr)

    def program_page(self, addr: int, data: bytes, spare: bytes) -> None:
        self.inner.program_page(addr, data, spare)

    def write_data(self, addr: int, data: bytes, programs: int) -> None:
        self.inner.write_data(addr, data, programs)

    def write_spare(self, addr: int, spare: bytes, programs: int) -> None:
        self.inner.write_spare(addr, spare, programs)

    def erase_block(self, block: int) -> None:
        self.inner.erase_block(block)

    def read_pages(
        self, addrs: Sequence[int]
    ) -> List[Tuple[Optional[bytes], Optional[bytes]]]:
        return self.inner.read_pages(addrs)

    def read_spares(self, addrs: Sequence[int]) -> List[Optional[bytes]]:
        return self.inner.read_spares(addrs)

    def program_pages(self, items: Sequence[Tuple[int, bytes, bytes]]) -> None:
        self.inner.program_pages(items)

    def data_programs(self, addr: int) -> int:
        return self.inner.data_programs(addr)

    def spare_programs(self, addr: int) -> int:
        return self.inner.spare_programs(addr)

    def erase_count(self, block: int) -> int:
        return self.inner.erase_count(block)

    def is_block_erased(self, block: int) -> bool:
        return self.inner.is_block_erased(block)

    def iter_programmed(self) -> Iterator[int]:
        return self.inner.iter_programmed()

    def sync(self) -> None:
        self.inner.sync()

    def close(self) -> None:
        self.inner.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<FaultInjector over {self.inner!r} faults={self.total_injected}>"


def _address_runs(addrs: Sequence[int]) -> Iterator[Tuple[int, int]]:
    """Split an address sequence into maximal contiguous (start, count) runs."""
    run_start: Optional[int] = None
    prev = -2
    count = 0
    for addr in addrs:
        if run_start is not None and addr == prev + 1:
            count += 1
        else:
            if run_start is not None:
                yield run_start, count
            run_start = addr
            count = 1
        prev = addr
    if run_start is not None:
        yield run_start, count


def _contiguous_runs(
    items: Sequence[Tuple[int, bytes, bytes]]
) -> Iterator[List[Tuple[int, bytes, bytes]]]:
    """Group (addr, data, spare) items into contiguous-address runs."""
    run: List[Tuple[int, bytes, bytes]] = []
    for item in items:
        if run and item[0] != run[-1][0] + 1:
            yield run
            run = []
        run.append(item)
    if run:
        yield run
