"""Flash chip geometry and timing parameters (the paper's Table 1).

A :class:`FlashSpec` bundles everything the emulator needs to know about a
chip: geometry (blocks, pages per block, page size), the spare-area size,
per-operation latencies, and programming constraints.  All higher layers
(drivers, workloads, benchmarks) take a spec instead of hard-coding sizes,
so tests can run on tiny chips and benchmarks on paper-scale ones.

The paper's reference chip is the Samsung K9L8G08U0M MLC NAND part
(Table 1): 2,048-byte data areas, 64-byte spare areas, 64 pages per block,
Tread = 110 µs, Twrite = 1,010 µs, Terase = 1,500 µs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional


@dataclass(frozen=True)
class FlashSpec:
    """Immutable description of a NAND flash chip.

    Attributes
    ----------
    n_blocks:
        Number of erase blocks on the chip (``Nblock`` in Table 1).
    pages_per_block:
        Pages in each block (``Npage``); the erase unit is a block, the
        read/write unit is a page.
    page_data_size:
        Bytes in the data area of a page (``Sdata``).
    page_spare_size:
        Bytes in the spare (out-of-band) area (``Sspare``), used for the
        page type, obsolete flag, page id and timestamp.
    t_read_us / t_write_us / t_erase_us:
        Latency charged to the simulated clock per operation (``Tread``,
        ``Twrite``, ``Terase``).
    max_spare_programs:
        How many times the spare area may be programmed without an erase.
        The paper (footnote 9) uses 4; obsoleting a page is the second
        program.
    max_log_page_programs:
        Partial-program budget for pages used as IPL log pages.  The
        paper's IPL cost model flushes 1/16-page log buffers, i.e. up to 16
        programs land in one 2 KB log page; this knob documents and bounds
        that relaxation (see DESIGN.md, substitutions).
    erase_endurance:
        Erase cycles a block sustains before wearing out (~100,000 for the
        paper's chip).  Only enforced when ``enforce_endurance`` is True;
        otherwise wear is just counted for Experiment 6.
    """

    n_blocks: int = 32768
    pages_per_block: int = 64
    page_data_size: int = 2048
    page_spare_size: int = 64
    t_read_us: float = 110.0
    t_write_us: float = 1010.0
    t_erase_us: float = 1500.0
    max_spare_programs: int = 4
    max_log_page_programs: int = 16
    erase_endurance: int = 100_000
    enforce_endurance: bool = False

    def __post_init__(self) -> None:
        if self.n_blocks <= 0:
            raise ValueError("n_blocks must be positive")
        if self.pages_per_block <= 0:
            raise ValueError("pages_per_block must be positive")
        if self.page_data_size <= 0:
            raise ValueError("page_data_size must be positive")
        if self.page_spare_size < 16:
            raise ValueError("page_spare_size must hold at least a 16-byte header")
        if min(self.t_read_us, self.t_write_us, self.t_erase_us) < 0:
            raise ValueError("latencies must be non-negative")

    # ------------------------------------------------------------------
    # Derived geometry
    # ------------------------------------------------------------------
    @property
    def n_pages(self) -> int:
        """Total pages on the chip."""
        return self.n_blocks * self.pages_per_block

    @property
    def page_size(self) -> int:
        """Data + spare bytes per page (``Spage``)."""
        return self.page_data_size + self.page_spare_size

    @property
    def block_size(self) -> int:
        """Bytes per block including spare areas (``Sblock``)."""
        return self.pages_per_block * self.page_size

    @property
    def block_data_size(self) -> int:
        """Data bytes per block (excluding spare areas)."""
        return self.pages_per_block * self.page_data_size

    @property
    def data_capacity(self) -> int:
        """Total data-area bytes on the chip."""
        return self.n_pages * self.page_data_size

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    def with_timings(
        self,
        t_read_us: Optional[float] = None,
        t_write_us: Optional[float] = None,
        t_erase_us: Optional[float] = None,
    ) -> "FlashSpec":
        """Return a copy with some latencies replaced (Experiment 5)."""
        return replace(
            self,
            t_read_us=self.t_read_us if t_read_us is None else t_read_us,
            t_write_us=self.t_write_us if t_write_us is None else t_write_us,
            t_erase_us=self.t_erase_us if t_erase_us is None else t_erase_us,
        )

    def scaled(self, n_blocks: int) -> "FlashSpec":
        """Return a copy with a different block count (same page geometry)."""
        return replace(self, n_blocks=n_blocks)


# ----------------------------------------------------------------------
# Presets
# ----------------------------------------------------------------------

#: The paper's Table 1 chip: Samsung K9L8G08U0M MLC NAND.
SAMSUNG_K9L8G08U0M = FlashSpec()

#: Paper geometry scaled down for laptop-scale benchmarks: identical page
#: and block shape and latencies, fewer blocks (64 MB of data area).
BENCH_SPEC = FlashSpec(n_blocks=512)

#: An 8 KB logical/physical page variant used by Figure 13(b), following
#: Lee & Moon's IPL evaluation.
BENCH_SPEC_8K = FlashSpec(n_blocks=128, page_data_size=8192, page_spare_size=256)

#: A tiny chip for unit and property tests: 16 blocks of 8 × 256-byte pages.
#: The 32-byte spare leaves room for the data-area checksum, so tiny-chip
#: tests exercise the integrity layer too (a 16-byte spare would silently
#: disable it — see :mod:`repro.flash.spare`).
TINY_SPEC = FlashSpec(
    n_blocks=16,
    pages_per_block=8,
    page_data_size=256,
    page_spare_size=32,
)


def spec_for_database(
    database_pages: int,
    utilization: float = 0.25,
    base: FlashSpec = SAMSUNG_K9L8G08U0M,
) -> FlashSpec:
    """Build a spec sized so ``database_pages`` fill ``utilization`` of it.

    The paper loads a 1 GB database onto the Table-1 chip, i.e. roughly a
    quarter of the data capacity; GC pressure and IPL's block layout both
    depend on this ratio, so experiments preserve it while scaling capacity
    down.  At least two spare blocks beyond the exact fit are guaranteed so
    GC and IPL merging always have a relocation target.
    """
    if not 0.0 < utilization <= 1.0:
        raise ValueError("utilization must be in (0, 1]")
    if database_pages <= 0:
        raise ValueError("database_pages must be positive")
    needed_pages = int(database_pages / utilization)
    n_blocks = -(-needed_pages // base.pages_per_block)  # ceil division
    n_blocks = max(n_blocks, -(-database_pages // base.pages_per_block) + 2)
    return replace(base, n_blocks=n_blocks)
