"""Operation accounting and the simulated I/O clock.

The paper's metric is *I/O time*: wall-clock time spent in the flash
emulator, which by construction equals the sum of per-operation latencies
from Table 1.  :class:`FlashStats` therefore keeps exact operation counts
and charges each operation's latency to a simulated clock — the reported
microseconds are deterministic and independent of host speed.

Costs are attributed to *phases* so experiments can split a bar the way
Figure 12 does (read step vs. write step, with the GC share of the write
step shown separately).  Drivers push a phase around each entry point::

    with chip.stats.phase("write_step"):
        ...              # programs, obsolete marks
        with chip.stats.phase("gc"):
            ...          # relocations + erase, still inside the write step

Phases nest; an operation is charged to the innermost phase only, so
"write_step" and "gc" partition the write path and Figure 12's total is
simply their sum.

Threading model (see ``docs/concurrency.md``): the phase stack is
*thread-local*, so a worker thread executing one shard's operations and
a client thread pushing an outer phase never corrupt each other's
nesting.  Counter mutation stays lock-free on the hot path because the
parallel execution layer guarantees a **single writer per collector**
(one worker thread per shard); the only lock taken guards creation of a
new phase bucket against a concurrent aggregate read, so ``totals()`` /
``snapshot()`` from a monitoring thread never observe the phases dict
mid-resize.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: Phase used when no phase was pushed (initial load, ad-hoc access).
DEFAULT_PHASE = "unattributed"

#: Conventional phase names used by the drivers and reports.
READ_STEP = "read_step"
WRITE_STEP = "write_step"
GC = "gc"


def percentile(samples: List[float], pct: float) -> float:
    """Nearest-rank percentile of ``samples`` (0 when empty)."""
    if not samples:
        return 0.0
    if not 0 < pct <= 100:
        raise ValueError(f"percentile must be in (0, 100], got {pct}")
    ordered = sorted(samples)
    rank = max(1, -(-len(ordered) * pct // 100))  # ceil without math import
    return ordered[int(rank) - 1]


class LatencyRecorder:
    """A bag of latency samples with nearest-rank percentile reads.

    Shared by the stats layers that meter per-event stalls (the buffer
    pool's client-visible eviction stalls; merged views pool several
    recorders with :meth:`extend`).  Samples are microseconds; zero
    samples are recorded too, so percentiles are over *all* events
    rather than only the stalled ones — the same convention as
    :meth:`FlashStats.record_write_stall`.
    """

    __slots__ = ("samples",)

    def __init__(self) -> None:
        self.samples: List[float] = []

    def record(self, us: float) -> None:
        self.samples.append(us)

    def extend(self, other: "LatencyRecorder") -> None:
        self.samples.extend(other.samples)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def max_us(self) -> float:
        return max(self.samples, default=0.0)

    @property
    def mean_us(self) -> float:
        return sum(self.samples) / len(self.samples) if self.samples else 0.0

    def percentile(self, pct: float) -> float:
        return percentile(self.samples, pct)

    def reset(self) -> None:
        self.samples = []


class _PhaseScope:
    """Context manager pushing a phase name for the ``with`` block."""

    __slots__ = ("_stack", "_name")

    def __init__(self, stack: List[str], name: str) -> None:
        self._stack = stack
        self._name = name

    def __enter__(self) -> None:
        self._stack.append(self._name)

    def __exit__(self, *exc: object) -> bool:
        self._stack.pop()
        return False


@dataclass
class OpCounts:
    """Operation counts and simulated time for one phase."""

    reads: int = 0
    writes: int = 0
    erases: int = 0
    time_us: float = 0.0

    def copy(self) -> "OpCounts":
        return OpCounts(self.reads, self.writes, self.erases, self.time_us)

    def add(self, other: "OpCounts") -> "OpCounts":
        return OpCounts(
            self.reads + other.reads,
            self.writes + other.writes,
            self.erases + other.erases,
            self.time_us + other.time_us,
        )

    def sub(self, other: "OpCounts") -> "OpCounts":
        return OpCounts(
            self.reads - other.reads,
            self.writes - other.writes,
            self.erases - other.erases,
            self.time_us - other.time_us,
        )

    @property
    def total_ops(self) -> int:
        return self.reads + self.writes + self.erases


class FlashStats:
    """Accumulates per-phase operation counts for one chip.

    Besides phase accounting, it tracks per-block erase counts (wear) for
    Experiment 6 and the longevity discussion, and exposes snapshot/delta
    helpers so a workload can measure only its steady-state window.
    """

    def __init__(
        self, n_blocks: int, t_read_us: float, t_write_us: float, t_erase_us: float
    ) -> None:
        self._t_read = t_read_us
        self._t_write = t_write_us
        self._t_erase = t_erase_us
        self.phases: Dict[str, OpCounts] = {}
        self.block_erases: List[int] = [0] * n_blocks
        self._local = threading.local()
        #: Guards phase-bucket creation against concurrent aggregate
        #: reads (totals/snapshot); per-op accounting itself is
        #: single-writer by the executor's one-worker-per-shard design.
        self._lock = threading.Lock()
        #: Read-cache accounting (see :mod:`repro.flash.cache`): hits are
        #: reads served from RAM — no flash operation, no Tread charge —
        #: while misses count reads that fell through to the device (a
        #: miss is *also* recorded as a normal read in its phase).
        self.cache_hits: int = 0
        self.cache_misses: int = 0
        #: Integrity accounting (see :mod:`repro.flash.spare`): how many
        #: page reads carried a spare-area checksum and were verified,
        #: and how many of those failed (raising ``ChecksumError``).
        self.checksum_checks: int = 0
        self.checksum_failures: int = 0
        #: Per-write GC stall samples (simulated us of reclamation work a
        #: single logical write absorbed); the GC engine records one
        #: sample per write, zero included, so percentiles are over all
        #: writes rather than only the stalled ones.
        self.write_stall_us: List[float] = []
        #: Incremental-GC accounting: bounded reclamation steps taken and
        #: the victim pages they relocated in total.
        self.gc_steps: int = 0
        self.gc_step_pages: int = 0
        #: Tiered mapping-table accounting (see :mod:`repro.core.mapping`):
        #: translation lookups served from the in-RAM overlay/cache
        #: (``hits``, no flash op), demand reads that paged a mapping page
        #: in from the snapshot region (``misses``, one flash read each,
        #: charged to the ``mapping`` phase), and mapping-region page
        #: programs — journal flushes plus snapshot pages (``writebacks``).
        self.mapping_hits: int = 0
        self.mapping_misses: int = 0
        self.mapping_writebacks: int = 0

    # ------------------------------------------------------------------
    # Pickling (process executor: worker-side stats travel over a pipe)
    # ------------------------------------------------------------------
    def __getstate__(self) -> Dict:
        """Counters only — the thread-local phase stack and the bucket
        lock are per-process runtime state and are rebuilt fresh on
        unpickle (an unpickled collector starts with no pushed phases)."""
        state = self.__dict__.copy()
        state.pop("_local", None)
        state.pop("_lock", None)
        return state

    def __setstate__(self, state: Dict) -> None:
        self.__dict__.update(state)
        self._local = threading.local()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Phase management
    # ------------------------------------------------------------------
    @property
    def _phase_stack(self) -> List[str]:
        """This thread's phase stack (phases travel with execution)."""
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def phase(self, name: str) -> "_PhaseScope":
        """Attribute operations inside the ``with`` block to phase ``name``.

        Returns a tiny reusable-shape scope object instead of a
        generator-based context manager: the phase push/pop brackets
        every driver entry point, so its constant cost is hot-path cost.
        """
        return _PhaseScope(self._phase_stack, name)

    @property
    def current_phase(self) -> str:
        stack = self._phase_stack
        return stack[-1] if stack else DEFAULT_PHASE

    def _bucket(self) -> OpCounts:
        name = self.current_phase
        bucket = self.phases.get(name)
        if bucket is None:
            with self._lock:
                bucket = self.phases.get(name)
                if bucket is None:
                    bucket = OpCounts()
                    self.phases[name] = bucket
        return bucket

    # ------------------------------------------------------------------
    # Recording (called by the chip)
    # ------------------------------------------------------------------
    def record_read(self) -> None:
        bucket = self._bucket()
        bucket.reads += 1
        bucket.time_us += self._t_read

    def record_reads(self, count: int) -> None:
        """Charge ``count`` reads at once (batched chip entry points);
        identical accounting to ``count`` :meth:`record_read` calls."""
        bucket = self._bucket()
        bucket.reads += count
        bucket.time_us += self._t_read * count

    def record_write(self) -> None:
        bucket = self._bucket()
        bucket.writes += 1
        bucket.time_us += self._t_write

    def record_erase(self, block: int) -> None:
        bucket = self._bucket()
        bucket.erases += 1
        bucket.time_us += self._t_erase
        self.block_erases[block] += 1

    def record_cache_hit(self) -> None:
        self.cache_hits += 1

    def record_cache_miss(self) -> None:
        self.cache_misses += 1

    def record_checksum_check(self) -> None:
        self.checksum_checks += 1

    def record_checksum_failure(self) -> None:
        self.checksum_failures += 1

    def record_write_stall(self, stall_us: float) -> None:
        """Record the GC time one logical write absorbed (0 for none)."""
        self.write_stall_us.append(stall_us)

    def record_gc_step(self, pages_relocated: int) -> None:
        """Record one bounded incremental-GC step."""
        self.gc_steps += 1
        self.gc_step_pages += pages_relocated

    def record_mapping_hit(self) -> None:
        """A translation lookup served without touching flash."""
        self.mapping_hits += 1

    def record_mapping_miss(self) -> None:
        """A translation lookup that demand-paged a mapping page in."""
        self.mapping_misses += 1

    def record_mapping_writeback(self, pages: int = 1) -> None:
        """Mapping pages written back to the flash region (journal/snapshot)."""
        self.mapping_writebacks += pages

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def phase_items(self) -> List:
        """A stable shallow copy of the phases dict for iteration.

        Taken under the bucket-creation lock, so a reader never iterates
        the dict while a worker inserts a new phase key.  The OpCounts
        values themselves are still live (single-writer mutation); exact
        readings belong after a join, as everywhere in the stats layer.
        """
        with self._lock:
            return list(self.phases.items())

    def totals(self) -> OpCounts:
        """Sum over all phases."""
        total = OpCounts()
        for _name, counts in self.phase_items():
            total = total.add(counts)
        return total

    def of_phase(self, name: str) -> OpCounts:
        return self.phases.get(name, OpCounts()).copy()

    @property
    def total_time_us(self) -> float:
        return self.totals().time_us

    @property
    def total_erases(self) -> int:
        return self.totals().erases

    def snapshot(self) -> "StatsSnapshot":
        """Freeze current counters; subtract later with ``delta_since``."""
        return StatsSnapshot(
            phases={name: counts.copy() for name, counts in self.phase_items()},
            block_erases=list(self.block_erases),
        )

    def delta_since(self, snap: "StatsSnapshot") -> "StatsSnapshot":
        """Counters accumulated since ``snap`` was taken."""
        phases: Dict[str, OpCounts] = {}
        for name, counts in self.phase_items():
            before = snap.phases.get(name, OpCounts())
            diff = counts.sub(before)
            if diff.total_ops or diff.time_us:
                phases[name] = diff
        erases = [now - then for now, then in zip(self.block_erases, snap.block_erases)]
        return StatsSnapshot(phases=phases, block_erases=erases)

    @property
    def cache_hit_ratio(self) -> float:
        accesses = self.cache_hits + self.cache_misses
        return self.cache_hits / accesses if accesses else 0.0

    def write_stall_percentile(self, pct: float) -> float:
        """Nearest-rank percentile of per-write GC stalls, in simulated us.

        ``write_stall_percentile(99)`` is the p99 write stall — the
        tail-latency metric incremental GC exists to shrink.  Returns 0
        when no writes have been metered.
        """
        return percentile(self.write_stall_us, pct)

    @property
    def max_write_stall_us(self) -> float:
        return max(self.write_stall_us, default=0.0)

    def reset(self) -> None:
        """Clear all counters (e.g. after loading + warm-up)."""
        self.phases.clear()
        self.block_erases = [0] * len(self.block_erases)
        self.cache_hits = 0
        self.cache_misses = 0
        self.checksum_checks = 0
        self.checksum_failures = 0
        self.write_stall_us = []
        self.gc_steps = 0
        self.gc_step_pages = 0
        self.mapping_hits = 0
        self.mapping_misses = 0
        self.mapping_writebacks = 0


@dataclass
class StatsSnapshot:
    """An immutable view of counters, used for steady-state windows."""

    phases: Dict[str, OpCounts] = field(default_factory=dict)
    block_erases: List[int] = field(default_factory=list)

    def totals(self) -> OpCounts:
        total = OpCounts()
        for counts in self.phases.values():
            total = total.add(counts)
        return total

    def of_phase(self, name: str) -> OpCounts:
        return self.phases.get(name, OpCounts()).copy()

    @property
    def total_time_us(self) -> float:
        return self.totals().time_us

    @property
    def total_erases(self) -> int:
        return self.totals().erases

    def time_of(self, *names: str) -> float:
        """Simulated time summed across the given phases."""
        return sum(self.of_phase(name).time_us for name in names)

    def max_block_erases(self) -> int:
        return max(self.block_erases, default=0)
