"""NAND flash chip emulator: policy over a pluggable device backend.

The chip enforces real NAND semantics (Section 2 of the paper):

* the read/write unit is a page, the erase unit is a block;
* an erased page reads as all bits 1 (``0xFF`` bytes);
* programming can only clear bits (1 → 0) — overwriting a programmed data
  area raises :class:`~repro.flash.errors.ProgramError`;
* the spare area may be re-programmed a limited number of times between
  erases (``FlashSpec.max_spare_programs``, 4 on the paper's chip), which
  is how pages are marked obsolete without an erase;
* log pages may be partially programmed in slots
  (``FlashSpec.max_log_page_programs``), the relaxation IPL's cost model
  requires (see DESIGN.md).

The *bits* live in a :class:`~repro.flash.backend.DeviceBackend` — the
volatile :class:`~repro.flash.backend.MemoryBackend` by default, or the
persistent :class:`~repro.flash.backend.FileBackend` for state that
survives the process.  The chip keeps everything the paper's model adds
on top: Table-1 latencies and phase accounting, the monotonic clock,
wear limits, crash injection, and the NAND legality checks above.

Batched entry points (:meth:`read_pages`, :meth:`read_spares`,
:meth:`program_pages`) charge exactly the same per-page latencies as N
single calls — simulated cost is identical by construction — but reach
the backend in one call, which amortizes syscalls on the file backend
and per-call overhead in memory.  Crash injection still fires *between*
pages of a batch: the pages admitted before the failure are persisted,
so the post-crash state is a prefix of completed operations exactly as
with single-page calls.

Crash injection: a :class:`CrashPoint` armed via
:meth:`FlashChip.set_crash_point` makes the chip raise
:class:`SimulatedPowerLoss` before the k-th subsequent *mutating*
operation, optionally filtered to specific operation kinds (the k-th
program, the k-th erase, …); :meth:`FlashChip.crash_after` is the
unfiltered shorthand.  Page programming is atomic at the chip level
(Section 4.5), so the chip state a recovery algorithm sees is always a
prefix of completed operations.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from .address import split_address
from .backend import DeviceBackend, MemoryBackend
from .cache import ReadCache
from .errors import (
    AddressError,
    ChecksumError,
    EraseError,
    ProgramError,
    SimulatedPowerLoss,
    SpareProgramError,
    WearOutError,
)
from .spare import (
    CHECKSUM_HEADER_SIZE,
    PageType,
    SpareArea,
    data_checksum,
    erased_spare,
)
from .spec import FlashSpec
from .stats import FlashStats

#: Mutating operation kinds that re-program page contents.
PROGRAM_OPS = ("program_page", "program_partial", "program_spare", "mark_obsolete")

#: Mutating operation kinds that erase blocks.
ERASE_OPS = ("erase_block",)

#: Every mutating operation kind the crash machinery can observe.
MUTATING_OPS = PROGRAM_OPS + ERASE_OPS


@dataclass(frozen=True)
class CrashPoint:
    """A power-loss trigger: fail before the (k+1)-th matching operation.

    ``after`` counts matching mutating operations that are *allowed*
    through before the crash fires (``after=0`` fails the very next
    one).  ``ops`` restricts matching to specific operation kinds from
    :data:`MUTATING_OPS`; ``None`` matches every mutating operation.
    Crash-matrix harnesses enumerate these points to exercise every
    inter-operation state a real power failure could expose.
    """

    after: int
    ops: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if self.after < 0:
            raise ValueError("after must be non-negative")
        if self.ops is not None:
            unknown = set(self.ops) - set(MUTATING_OPS)
            if unknown:
                raise ValueError(
                    f"unknown mutating ops {sorted(unknown)}; "
                    f"choose from {MUTATING_OPS}"
                )

    def matches(self, op: str) -> bool:
        return self.ops is None or op in self.ops


#: Buffers at or above this size take the vectorized legality check;
#: below it, one big-int conversion is cheaper than numpy call overhead.
_VECTORIZE_THRESHOLD = 128

Buffer = Union[bytes, bytearray, memoryview]


def _bits_compatible(old: Buffer, new: Buffer) -> bool:
    """True when programming ``new`` over ``old`` only clears bits.

    NAND programming can move bits 1 → 0 only, i.e. ``old & new == new``
    bytewise.  Page-sized buffers are checked with a vectorized numpy
    bitwise test (no whole-page big-int materialization); small buffers
    (spare areas) keep the int path, which wins under numpy's per-call
    overhead.  Both paths accept any buffer-protocol object.
    """
    if len(old) < _VECTORIZE_THRESHOLD:
        old_int = int.from_bytes(old, "little")
        new_int = int.from_bytes(new, "little")
        return old_int & new_int == new_int
    a = np.frombuffer(old, dtype=np.uint8)
    b = np.frombuffer(new, dtype=np.uint8)
    return bool(((a & b) == b).all())


class FlashChip:
    """An emulated NAND flash chip.

    Parameters
    ----------
    spec:
        Chip geometry and latencies.  May be omitted when ``backend`` is
        given (the backend's spec is adopted).
    stats:
        Optional pre-built stats collector (a fresh one is created by
        default).
    backend:
        Device backend holding the bits; defaults to a fresh
        :class:`MemoryBackend` — the original volatile emulator.
    read_cache_pages:
        Capacity of the LRU base-page read cache (0, the default,
        disables it).  Cache hits skip both the backend access and the
        ``Tread`` charge; see :mod:`repro.flash.cache`.
    realtime_scale:
        When positive, every operation *actually sleeps* ``scale ×`` its
        simulated latency, so the calling thread waits the way a host
        thread waits on a real NAND device.  ``1.0`` reproduces Table-1
        timings in wall-clock; fractions compress them proportionally.
        Sleeps release the GIL, which is what lets the parallel shard
        executor overlap device waits across chips
        (``benchmarks/bench_parallel.py``; see ``docs/concurrency.md``).
        Simulated accounting is unaffected; 0 (the default) never sleeps.
    """

    def __init__(
        self,
        spec: Optional[FlashSpec] = None,
        stats: Optional[FlashStats] = None,
        backend: Optional[DeviceBackend] = None,
        read_cache_pages: int = 0,
        realtime_scale: float = 0.0,
    ) -> None:
        if spec is None and backend is None:
            raise ValueError("FlashChip needs a spec or a backend")
        if backend is None:
            backend = MemoryBackend(spec)
        if spec is None:
            spec = backend.spec
        elif (
            spec.n_blocks,
            spec.pages_per_block,
            spec.page_data_size,
            spec.page_spare_size,
        ) != (
            backend.spec.n_blocks,
            backend.spec.pages_per_block,
            backend.spec.page_data_size,
            backend.spec.page_spare_size,
        ):
            raise ValueError(
                "spec geometry does not match the backend's image geometry"
            )
        self.spec = spec
        self.backend = backend
        self.stats = stats or FlashStats(
            spec.n_blocks, spec.t_read_us, spec.t_write_us, spec.t_erase_us
        )
        self.cache = ReadCache(read_cache_pages) if read_cache_pages > 0 else None
        if realtime_scale < 0:
            raise ValueError("realtime_scale must be non-negative")
        self.realtime_scale = realtime_scale
        self._clock_us: float = 0.0
        self._crash_point: Optional[CrashPoint] = None
        self._crash_remaining: int = 0
        self._on_op: Optional[Callable[[str], None]] = None

    # ------------------------------------------------------------------
    # Fault / observation hooks
    # ------------------------------------------------------------------
    def set_crash_point(self, point: Optional[CrashPoint]) -> None:
        """Arm a :class:`CrashPoint` (``None`` disarms).

        The chip raises :class:`SimulatedPowerLoss` before the first
        matching mutating operation once ``point.after`` matching
        operations have been allowed through.  The point itself is not
        mutated, so one :class:`CrashPoint` can arm many chips (or the
        same chip across matrix iterations).
        """
        self._crash_point = point
        self._crash_remaining = point.after if point is not None else 0

    def crash_after(self, mutating_ops: Optional[int]) -> None:
        """Raise :class:`SimulatedPowerLoss` before the N-th next mutating op.

        ``crash_after(0)`` makes the very next program/erase fail;
        ``crash_after(None)`` disarms the hook.  Shorthand for
        :meth:`set_crash_point` with an unfiltered :class:`CrashPoint`.
        """
        if mutating_ops is None:
            self.set_crash_point(None)
            return
        self.set_crash_point(CrashPoint(after=mutating_ops))

    def on_operation(self, callback: Optional[Callable[[str], None]]) -> None:
        """Install a per-operation observer (used by failure-injection tests).

        The callback runs before the operation mutates chip state; an
        exception raised from it aborts the operation, which is how
        multi-chip harnesses inject a globally-ordered power loss.
        """
        self._on_op = callback

    def _pre_mutate(self, op: str) -> None:
        point = self._crash_point
        if point is not None and point.matches(op):
            if self._crash_remaining <= 0:
                self._crash_point = None
                raise SimulatedPowerLoss(f"simulated power failure before {op}")
            self._crash_remaining -= 1
        if self._on_op is not None:
            self._on_op(op)

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    def _advance_clock(self, us: float) -> None:
        """Charge ``us`` simulated microseconds; in realtime mode, also
        make the calling thread wait the scaled latency (one sleep per
        chip call, so batched entry points wait once for the batch —
        ``program_pages`` charges per page and sleeps the batch total
        separately)."""
        self._clock_us += us
        self._sleep_scaled(us)

    def _sleep_scaled(self, us: float) -> None:
        """Actually wait ``realtime_scale × us`` (no-op at scale 0)."""
        if self.realtime_scale > 0.0:
            time.sleep(us * self.realtime_scale * 1e-6)

    @property
    def clock_us(self) -> float:
        """Simulated microseconds elapsed since chip creation.

        Unlike :class:`FlashStats`, the clock is never reset, so it can
        order events across warm-up boundaries.
        """
        return self._clock_us

    # ------------------------------------------------------------------
    # Read operations
    # ------------------------------------------------------------------
    def read_page(self, addr: int, verify: bool = True) -> Tuple[bytes, SpareArea]:
        """Read a page's data area and decoded spare area (one Tread).

        With a read cache enabled, a hit serves both from RAM and
        charges nothing; only base pages are admitted (see
        :mod:`repro.flash.cache`).

        When the spare area carries a data checksum it is verified
        against the data read back; a mismatch invalidates any cached
        copy and raises :class:`~repro.flash.errors.ChecksumError`
        (``verify=False`` skips the check — fsck reads suspect pages this
        way to classify damage itself).
        """
        self._check_addr(addr)
        if self.cache is not None:
            entry = self.cache.get(addr)
            if entry is not None:
                self.stats.record_cache_hit()
                return entry
        self.stats.record_read()
        self._advance_clock(self.spec.t_read_us)
        data = self.backend.read_data(addr)
        if data is None:
            data = b"\xff" * self.spec.page_data_size
        spare = self._decoded_spare(addr)
        if verify:
            self._verify_checksum(addr, data, spare)
        if self.cache is not None:
            self.stats.record_cache_miss()
            if verify and spare.type is PageType.BASE and not spare.obsolete:
                self.cache.put(addr, data, spare)
        return data, spare

    def read_spare(self, addr: int) -> SpareArea:
        """Read only the spare area (still one Tread, as in the paper's
        recovery-scan cost estimate of ~60 s for 1 GB)."""
        self._check_addr(addr)
        self.stats.record_read()
        self._advance_clock(self.spec.t_read_us)
        return self._decoded_spare(addr)

    def read_pages(
        self, addrs: Sequence[int], verify: bool = True
    ) -> List[Tuple[bytes, SpareArea]]:
        """Read many pages in one backend call (N × Tread, batched I/O).

        With the read cache disabled (the default), charges and results
        are identical to N :meth:`read_page` calls.  The cache is never
        consulted nor populated here — batch readers (GC, recovery)
        stream pages once and would only thrash it — so with a cache
        enabled this path always pays full Tread where single
        :meth:`read_page` calls might hit for free.

        Checksums are verified per page; the whole batch is charged
        before the first :class:`~repro.flash.errors.ChecksumError`
        propagates (the device did the reads — verification failed
        after them).
        """
        for addr in addrs:
            self._check_addr(addr)
        self.stats.record_reads(len(addrs))
        self._advance_clock(self.spec.t_read_us * len(addrs))
        erased = b"\xff" * self.spec.page_data_size
        out: List[Tuple[bytes, SpareArea]] = []
        for addr, (raw_data, raw_spare) in zip(addrs, self.backend.read_pages(addrs)):
            data = raw_data if raw_data is not None else erased
            spare = self._decode_raw_spare(raw_spare)
            if verify:
                self._verify_checksum(addr, data, spare)
            out.append((data, spare))
        return out

    def read_spares(self, addrs: Sequence[int]) -> List[SpareArea]:
        """Read many spare areas in one backend call (N × Tread).

        The recovery scan's hot path: on the file backend the spare
        region is contiguous, so scanning a whole chip's spare areas is
        a handful of sequential reads instead of one seek per page.
        """
        for addr in addrs:
            self._check_addr(addr)
        self.stats.record_reads(len(addrs))
        self._advance_clock(self.spec.t_read_us * len(addrs))
        decode = SpareArea.decode
        erased = erased_spare(self.spec.page_spare_size)
        return [
            decode(raw if raw is not None else erased)
            for raw in self.backend.read_spares(addrs)
        ]

    # ------------------------------------------------------------------
    # Program operations
    # ------------------------------------------------------------------
    def program_page(self, addr: int, data: bytes, spare: SpareArea) -> None:
        """Program a full page (data + spare) in one Twrite.

        The data area must currently be erased: NAND forbids overwriting.
        Short ``data`` is padded with ``0xFF`` (unprogrammed bits).
        When the spare area has room, a CRC32 of the (padded) data area
        is stamped into it automatically unless the caller already
        supplied one — GC relocations pass the decoded spare through, so
        identical copies keep their original, still-valid checksum.
        """
        payload = self._validate_program(addr, data)
        spare = self._attach_checksum(payload, spare)
        self._pre_mutate("program_page")
        self.stats.record_write()
        self._advance_clock(self.spec.t_write_us)
        self.backend.program_page(
            addr, payload, spare.encode(self.spec.page_spare_size)
        )
        if self.cache is not None:
            self.cache.invalidate(addr)

    def program_pages(
        self, items: Sequence[Tuple[int, bytes, SpareArea]]
    ) -> None:
        """Program many full pages in one backend call (N × Twrite).

        Semantically identical to N :meth:`program_page` calls, crash
        injection included: each page passes the crash/observer hook
        individually, and if a :class:`SimulatedPowerLoss` (or a
        validation error) fires at page *i*, pages ``[0, i)`` are
        persisted before the exception propagates — the surviving flash
        state is the same prefix a sequence of single programs would
        have left.
        """
        staged: List[Tuple[int, bytes, bytes]] = []
        staged_addrs = set()
        try:
            for addr, data, spare in items:
                if addr in staged_addrs:
                    raise ProgramError(
                        f"page {split_address(addr, self.spec)} programmed "
                        "twice in one batch"
                    )
                payload = self._validate_program(addr, data)
                spare = self._attach_checksum(payload, spare)
                self._pre_mutate("program_page")
                self.stats.record_write()
                # Clock per page; the realtime wait happens once for the
                # whole admitted batch below (matching read_pages).
                self._clock_us += self.spec.t_write_us
                staged.append(
                    (addr, payload, spare.encode(self.spec.page_spare_size))
                )
                staged_addrs.add(addr)
        finally:
            if staged:
                self.backend.program_pages(staged)
                self._sleep_scaled(self.spec.t_write_us * len(staged))
                if self.cache is not None:
                    for addr in staged_addrs:
                        self.cache.invalidate(addr)

    def _validate_program(self, addr: int, data: Buffer) -> Buffer:
        """Validate and normalize a program payload without copying it.

        Full-size buffers pass through untouched (bytes, bytearray or
        memoryview — the backend makes the single owning copy where it
        needs one); short payloads are padded into one fresh buffer.
        """
        self._check_addr(addr)
        if len(data) > self.spec.page_data_size:
            raise ProgramError(
                f"data of {len(data)} bytes exceeds page data area "
                f"of {self.spec.page_data_size}"
            )
        if self.backend.data_programs(addr) != 0:
            raise ProgramError(
                f"page {split_address(addr, self.spec)} already programmed; "
                "erase the block before rewriting"
            )
        if len(data) < self.spec.page_data_size:
            padded = bytearray(data)
            padded += b"\xff" * (self.spec.page_data_size - len(padded))
            return padded
        return data

    def program_partial(
        self, addr: int, offset: int, data: bytes, spare: Optional[SpareArea] = None
    ) -> None:
        """Program a slice of a page's data area (one Twrite).

        Used for IPL log pages, which accumulate log slots across several
        partial programs.  The target byte range must still be erased and
        the page's partial-program budget must not be exhausted.  ``spare``
        is programmed alongside the first partial program only.

        No checksum is stamped here: the data area keeps changing across
        partial programs, so a CRC taken at the first one would be stale
        by the second.  Log pages are covered by their own record-level
        framing instead.
        """
        self._check_addr(addr)
        if offset < 0 or offset + len(data) > self.spec.page_data_size:
            raise ProgramError(
                f"partial program [{offset}, {offset + len(data)}) outside "
                f"data area of {self.spec.page_data_size} bytes"
            )
        current = self.backend.read_data(addr)
        if current is None:
            current = b"\xff" * self.spec.page_data_size
        region = current[offset : offset + len(data)]
        if region.count(0xFF) != len(region):
            raise ProgramError(
                f"partial program overlaps programmed bytes at "
                f"{split_address(addr, self.spec)}+{offset}"
            )
        data_programs = self.backend.data_programs(addr)
        if data_programs >= self.spec.max_log_page_programs:
            raise ProgramError(
                f"page {split_address(addr, self.spec)} exhausted its "
                f"{self.spec.max_log_page_programs} partial programs"
            )
        self._pre_mutate("program_partial")
        self.stats.record_write()
        self._advance_clock(self.spec.t_write_us)
        updated = bytearray(current)
        updated[offset : offset + len(data)] = data
        self.backend.write_data(addr, updated, data_programs + 1)
        if self.backend.spare_programs(addr) == 0:
            chosen = spare if spare is not None else SpareArea()
            self.backend.write_spare(
                addr, chosen.encode(self.spec.page_spare_size), 1
            )
        if self.cache is not None:
            self.cache.invalidate(addr)

    def program_spare(self, addr: int, spare: SpareArea) -> None:
        """Re-program only the spare area (one Twrite).

        This is how pages are marked obsolete.  The new contents must be
        bit-compatible with the current spare (1 → 0 only) and the spare
        program budget (4 on the paper's chip) must not be exceeded.

        A caller passing a spare without a checksum over a page whose
        spare already carries one would violate bit-compatibility (the
        all-ones "no checksum" slot cannot be restored); the existing
        checksum is preserved automatically in that case.
        """
        self._check_addr(addr)
        current = self.backend.read_spare(addr)
        if current is not None and spare.checksum is None:
            spare = spare.with_checksum(SpareArea.decode(current).checksum)
        encoded = spare.encode(self.spec.page_spare_size)
        if current is not None and not _bits_compatible(current, encoded):
            raise SpareProgramError(
                f"spare reprogram at {split_address(addr, self.spec)} "
                "would set bits from 0 to 1"
            )
        spare_programs = self.backend.spare_programs(addr)
        if spare_programs >= self.spec.max_spare_programs:
            raise SpareProgramError(
                f"spare area at {split_address(addr, self.spec)} exhausted its "
                f"{self.spec.max_spare_programs} programs"
            )
        self._pre_mutate("program_spare")
        self.stats.record_write()
        self._advance_clock(self.spec.t_write_us)
        self.backend.write_spare(addr, encoded, spare_programs + 1)
        if self.cache is not None:
            self.cache.invalidate(addr)

    def mark_obsolete(self, addr: int) -> None:
        """Clear the obsolete flag byte in a page's spare area (one Twrite).

        This is the paper's "setting the page to obsolete": a second spare
        program that only clears bits, charged as a write operation (the
        paper counts OPU as *two* writes per update for exactly this
        reason).  Marking an erased page obsolete is rejected — it would
        hide an FTL bookkeeping bug.
        """
        self._check_addr(addr)
        current = self.backend.read_spare(addr)
        if current is None:
            raise ProgramError(
                f"cannot obsolete erased page {split_address(addr, self.spec)}"
            )
        spare_programs = self.backend.spare_programs(addr)
        if spare_programs >= self.spec.max_spare_programs:
            raise SpareProgramError(
                f"spare area at {split_address(addr, self.spec)} exhausted its "
                f"{self.spec.max_spare_programs} programs"
            )
        self._pre_mutate("mark_obsolete")
        self.stats.record_write()
        self._advance_clock(self.spec.t_write_us)
        patched = bytearray(current)
        patched[1] = 0x00
        self.backend.write_spare(addr, patched, spare_programs + 1)
        if self.cache is not None:
            self.cache.invalidate(addr)

    # ------------------------------------------------------------------
    # Erase
    # ------------------------------------------------------------------
    def erase_block(self, block: int) -> None:
        """Erase a block: every page returns to all bits 1 (one Terase)."""
        if not 0 <= block < self.spec.n_blocks:
            raise AddressError(f"block {block} outside chip of {self.spec.n_blocks}")
        if (
            self.spec.enforce_endurance
            and self.backend.erase_count(block) >= self.spec.erase_endurance
        ):
            raise WearOutError(
                f"block {block} exceeded endurance of {self.spec.erase_endurance}"
            )
        self._pre_mutate("erase_block")
        self.stats.record_erase(block)
        self._advance_clock(self.spec.t_erase_us)
        self.backend.erase_block(block)
        if self.cache is not None:
            start = block * self.spec.pages_per_block
            self.cache.invalidate_range(start, start + self.spec.pages_per_block)

    # ------------------------------------------------------------------
    # Cost-free inspection (tests, assertions, recovery verification)
    # ------------------------------------------------------------------
    def peek_data(self, addr: int) -> bytes:
        """Data area contents without charging I/O time (test/debug only)."""
        self._check_addr(addr)
        data = self.backend.read_data(addr)
        return data if data is not None else b"\xff" * self.spec.page_data_size

    def peek_spare(self, addr: int) -> SpareArea:
        """Decoded spare area without charging I/O time (test/debug only)."""
        self._check_addr(addr)
        return self._decoded_spare(addr)

    def is_page_erased(self, addr: int) -> bool:
        self._check_addr(addr)
        return (
            self.backend.data_programs(addr) == 0
            and self.backend.spare_programs(addr) == 0
        )

    def is_block_erased(self, block: int) -> bool:
        if not 0 <= block < self.spec.n_blocks:
            raise AddressError(f"block {block} outside chip of {self.spec.n_blocks}")
        return self.backend.is_block_erased(block)

    def erase_count(self, block: int) -> int:
        if not 0 <= block < self.spec.n_blocks:
            raise AddressError(f"block {block} outside chip of {self.spec.n_blocks}")
        return self.backend.erase_count(block)

    def iter_programmed_pages(self) -> Iterator[int]:
        """Flat addresses of all pages with a programmed spare area."""
        return self.backend.iter_programmed()

    # ------------------------------------------------------------------
    # Lifecycle (persistent backends)
    # ------------------------------------------------------------------
    def sync(self) -> None:
        """Push backend state to durable media (no-op in memory)."""
        self.backend.sync()

    def close(self) -> None:
        """Sync and release the backend; the chip is unusable afterwards."""
        self.backend.close()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _attach_checksum(self, payload: bytes, spare: SpareArea) -> SpareArea:
        """Stamp a data-area CRC into a spare about to be programmed.

        Only when the spare area has room for it and the caller did not
        supply one already (GC relocations and recovery re-programs pass
        decoded spares through, preserving the original checksum over
        bit-identical data).
        """
        if (
            spare.checksum is None
            and self.spec.page_spare_size >= CHECKSUM_HEADER_SIZE
        ):
            return spare.with_checksum(data_checksum(payload))
        return spare

    def _verify_checksum(self, addr: int, data: bytes, spare: SpareArea) -> None:
        """Compare the data read back against the spare's stored CRC."""
        if spare.checksum is None:
            return
        self.stats.record_checksum_check()
        if data_checksum(data) != spare.checksum:
            self.stats.record_checksum_failure()
            if self.cache is not None:
                # A repaired page must never be shadowed by the bad copy.
                self.cache.invalidate(addr)
            raise ChecksumError(
                f"page {split_address(addr, self.spec)} data does not match "
                f"its spare-area checksum"
            )

    def _decoded_spare(self, addr: int) -> SpareArea:
        return self._decode_raw_spare(self.backend.read_spare(addr))

    def _decode_raw_spare(self, raw: Optional[bytes]) -> SpareArea:
        if raw is None:
            raw = erased_spare(self.spec.page_spare_size)
        return SpareArea.decode(raw)

    def _check_addr(self, addr: int) -> None:
        if not 0 <= addr < self.spec.n_pages:
            raise AddressError(
                f"page address {addr} outside chip of {self.spec.n_pages} pages"
            )
