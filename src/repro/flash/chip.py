"""In-memory NAND flash chip emulator.

The emulator enforces real NAND semantics (Section 2 of the paper):

* the read/write unit is a page, the erase unit is a block;
* an erased page reads as all bits 1 (``0xFF`` bytes);
* programming can only clear bits (1 → 0) — overwriting a programmed data
  area raises :class:`~repro.flash.errors.ProgramError`;
* the spare area may be re-programmed a limited number of times between
  erases (``FlashSpec.max_spare_programs``, 4 on the paper's chip), which
  is how pages are marked obsolete without an erase;
* log pages may be partially programmed in slots
  (``FlashSpec.max_log_page_programs``), the relaxation IPL's cost model
  requires (see DESIGN.md).

Every operation charges its Table-1 latency to :class:`FlashStats` under
the current accounting phase, and to a monotonic chip clock that survives
stats resets.  The paper's own numbers come from exactly this kind of
emulator ("access time using the emulator must be identical to that using
the real flash memory"), so simulated I/O time is the faithful metric.

Crash injection: a :class:`CrashPoint` armed via
:meth:`FlashChip.set_crash_point` makes the chip raise
:class:`SimulatedPowerLoss` before the k-th subsequent *mutating*
operation, optionally filtered to specific operation kinds (the k-th
program, the k-th erase, …); :meth:`FlashChip.crash_after` is the
unfiltered shorthand.  Page programming is atomic at the chip level
(Section 4.5), so the chip state a recovery algorithm sees is always a
prefix of completed operations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Tuple

from .address import page_range_of_block, split_address
from .errors import (
    AddressError,
    EraseError,
    ProgramError,
    SimulatedPowerLoss,
    SpareProgramError,
    WearOutError,
)
from .spare import SpareArea, erased_spare
from .spec import FlashSpec
from .stats import FlashStats

#: Mutating operation kinds that re-program page contents.
PROGRAM_OPS = ("program_page", "program_partial", "program_spare", "mark_obsolete")

#: Mutating operation kinds that erase blocks.
ERASE_OPS = ("erase_block",)

#: Every mutating operation kind the crash machinery can observe.
MUTATING_OPS = PROGRAM_OPS + ERASE_OPS


@dataclass(frozen=True)
class CrashPoint:
    """A power-loss trigger: fail before the (k+1)-th matching operation.

    ``after`` counts matching mutating operations that are *allowed*
    through before the crash fires (``after=0`` fails the very next
    one).  ``ops`` restricts matching to specific operation kinds from
    :data:`MUTATING_OPS`; ``None`` matches every mutating operation.
    Crash-matrix harnesses enumerate these points to exercise every
    inter-operation state a real power failure could expose.
    """

    after: int
    ops: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if self.after < 0:
            raise ValueError("after must be non-negative")
        if self.ops is not None:
            unknown = set(self.ops) - set(MUTATING_OPS)
            if unknown:
                raise ValueError(
                    f"unknown mutating ops {sorted(unknown)}; "
                    f"choose from {MUTATING_OPS}"
                )

    def matches(self, op: str) -> bool:
        return self.ops is None or op in self.ops


def _bits_compatible(old: bytes, new: bytes) -> bool:
    """True when programming ``new`` over ``old`` only clears bits."""
    old_int = int.from_bytes(old, "little")
    new_int = int.from_bytes(new, "little")
    return old_int & new_int == new_int


class FlashChip:
    """An emulated NAND flash chip.

    Parameters
    ----------
    spec:
        Chip geometry and latencies.
    stats:
        Optional pre-built stats collector (a fresh one is created by
        default).
    """

    def __init__(self, spec: FlashSpec, stats: Optional[FlashStats] = None):
        self.spec = spec
        self.stats = stats or FlashStats(
            spec.n_blocks, spec.t_read_us, spec.t_write_us, spec.t_erase_us
        )
        # None = erased.  Data and spare stored separately so spare
        # re-programming does not copy the 2 KB data area.
        self._data: List[Optional[bytes]] = [None] * spec.n_pages
        self._spare: List[Optional[bytes]] = [None] * spec.n_pages
        self._data_programs: List[int] = [0] * spec.n_pages
        self._spare_programs: List[int] = [0] * spec.n_pages
        self._erase_counts: List[int] = [0] * spec.n_blocks
        self._clock_us: float = 0.0
        self._crash_point: Optional[CrashPoint] = None
        self._crash_remaining: int = 0
        self._on_op: Optional[Callable[[str], None]] = None

    # ------------------------------------------------------------------
    # Fault / observation hooks
    # ------------------------------------------------------------------
    def set_crash_point(self, point: Optional[CrashPoint]) -> None:
        """Arm a :class:`CrashPoint` (``None`` disarms).

        The chip raises :class:`SimulatedPowerLoss` before the first
        matching mutating operation once ``point.after`` matching
        operations have been allowed through.  The point itself is not
        mutated, so one :class:`CrashPoint` can arm many chips (or the
        same chip across matrix iterations).
        """
        self._crash_point = point
        self._crash_remaining = point.after if point is not None else 0

    def crash_after(self, mutating_ops: Optional[int]) -> None:
        """Raise :class:`SimulatedPowerLoss` before the N-th next mutating op.

        ``crash_after(0)`` makes the very next program/erase fail;
        ``crash_after(None)`` disarms the hook.  Shorthand for
        :meth:`set_crash_point` with an unfiltered :class:`CrashPoint`.
        """
        if mutating_ops is None:
            self.set_crash_point(None)
            return
        self.set_crash_point(CrashPoint(after=mutating_ops))

    def on_operation(self, callback: Optional[Callable[[str], None]]) -> None:
        """Install a per-operation observer (used by failure-injection tests).

        The callback runs before the operation mutates chip state; an
        exception raised from it aborts the operation, which is how
        multi-chip harnesses inject a globally-ordered power loss.
        """
        self._on_op = callback

    def _pre_mutate(self, op: str) -> None:
        point = self._crash_point
        if point is not None and point.matches(op):
            if self._crash_remaining <= 0:
                self._crash_point = None
                raise SimulatedPowerLoss(f"simulated power failure before {op}")
            self._crash_remaining -= 1
        if self._on_op is not None:
            self._on_op(op)

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def clock_us(self) -> float:
        """Simulated microseconds elapsed since chip creation.

        Unlike :class:`FlashStats`, the clock is never reset, so it can
        order events across warm-up boundaries.
        """
        return self._clock_us

    # ------------------------------------------------------------------
    # Read operations
    # ------------------------------------------------------------------
    def read_page(self, addr: int) -> Tuple[bytes, SpareArea]:
        """Read a page's data area and decoded spare area (one Tread)."""
        self._check_addr(addr)
        self.stats.record_read()
        self._clock_us += self.spec.t_read_us
        data = self._data[addr]
        if data is None:
            data = b"\xff" * self.spec.page_data_size
        return data, self._decoded_spare(addr)

    def read_spare(self, addr: int) -> SpareArea:
        """Read only the spare area (still one Tread, as in the paper's
        recovery-scan cost estimate of ~60 s for 1 GB)."""
        self._check_addr(addr)
        self.stats.record_read()
        self._clock_us += self.spec.t_read_us
        return self._decoded_spare(addr)

    # ------------------------------------------------------------------
    # Program operations
    # ------------------------------------------------------------------
    def program_page(self, addr: int, data: bytes, spare: SpareArea) -> None:
        """Program a full page (data + spare) in one Twrite.

        The data area must currently be erased: NAND forbids overwriting.
        Short ``data`` is padded with ``0xFF`` (unprogrammed bits).
        """
        self._check_addr(addr)
        if len(data) > self.spec.page_data_size:
            raise ProgramError(
                f"data of {len(data)} bytes exceeds page data area "
                f"of {self.spec.page_data_size}"
            )
        if self._data[addr] is not None:
            raise ProgramError(
                f"page {split_address(addr, self.spec)} already programmed; "
                "erase the block before rewriting"
            )
        self._pre_mutate("program_page")
        self.stats.record_write()
        self._clock_us += self.spec.t_write_us
        if len(data) < self.spec.page_data_size:
            data = bytes(data) + b"\xff" * (self.spec.page_data_size - len(data))
        self._data[addr] = bytes(data)
        self._spare[addr] = spare.encode(self.spec.page_spare_size)
        self._data_programs[addr] = 1
        self._spare_programs[addr] = 1

    def program_partial(
        self, addr: int, offset: int, data: bytes, spare: Optional[SpareArea] = None
    ) -> None:
        """Program a slice of a page's data area (one Twrite).

        Used for IPL log pages, which accumulate log slots across several
        partial programs.  The target byte range must still be erased and
        the page's partial-program budget must not be exhausted.  ``spare``
        is programmed alongside the first partial program only.
        """
        self._check_addr(addr)
        if offset < 0 or offset + len(data) > self.spec.page_data_size:
            raise ProgramError(
                f"partial program [{offset}, {offset + len(data)}) outside "
                f"data area of {self.spec.page_data_size} bytes"
            )
        current = self._data[addr]
        if current is None:
            current = b"\xff" * self.spec.page_data_size
        region = current[offset : offset + len(data)]
        if region.count(0xFF) != len(region):
            raise ProgramError(
                f"partial program overlaps programmed bytes at "
                f"{split_address(addr, self.spec)}+{offset}"
            )
        if self._data_programs[addr] >= self.spec.max_log_page_programs:
            raise ProgramError(
                f"page {split_address(addr, self.spec)} exhausted its "
                f"{self.spec.max_log_page_programs} partial programs"
            )
        self._pre_mutate("program_partial")
        self.stats.record_write()
        self._clock_us += self.spec.t_write_us
        updated = bytearray(current)
        updated[offset : offset + len(data)] = data
        self._data[addr] = bytes(updated)
        self._data_programs[addr] += 1
        if self._spare[addr] is None:
            chosen = spare if spare is not None else SpareArea()
            self._spare[addr] = chosen.encode(self.spec.page_spare_size)
            self._spare_programs[addr] = 1

    def program_spare(self, addr: int, spare: SpareArea) -> None:
        """Re-program only the spare area (one Twrite).

        This is how pages are marked obsolete.  The new contents must be
        bit-compatible with the current spare (1 → 0 only) and the spare
        program budget (4 on the paper's chip) must not be exceeded.
        """
        self._check_addr(addr)
        encoded = spare.encode(self.spec.page_spare_size)
        current = self._spare[addr]
        if current is not None and not _bits_compatible(current, encoded):
            raise SpareProgramError(
                f"spare reprogram at {split_address(addr, self.spec)} "
                "would set bits from 0 to 1"
            )
        if self._spare_programs[addr] >= self.spec.max_spare_programs:
            raise SpareProgramError(
                f"spare area at {split_address(addr, self.spec)} exhausted its "
                f"{self.spec.max_spare_programs} programs"
            )
        self._pre_mutate("program_spare")
        self.stats.record_write()
        self._clock_us += self.spec.t_write_us
        self._spare[addr] = encoded
        self._spare_programs[addr] += 1

    def mark_obsolete(self, addr: int) -> None:
        """Clear the obsolete flag byte in a page's spare area (one Twrite).

        This is the paper's "setting the page to obsolete": a second spare
        program that only clears bits, charged as a write operation (the
        paper counts OPU as *two* writes per update for exactly this
        reason).  Marking an erased page obsolete is rejected — it would
        hide an FTL bookkeeping bug.
        """
        self._check_addr(addr)
        current = self._spare[addr]
        if current is None:
            raise ProgramError(
                f"cannot obsolete erased page {split_address(addr, self.spec)}"
            )
        if self._spare_programs[addr] >= self.spec.max_spare_programs:
            raise SpareProgramError(
                f"spare area at {split_address(addr, self.spec)} exhausted its "
                f"{self.spec.max_spare_programs} programs"
            )
        self._pre_mutate("mark_obsolete")
        self.stats.record_write()
        self._clock_us += self.spec.t_write_us
        patched = bytearray(current)
        patched[1] = 0x00
        self._spare[addr] = bytes(patched)
        self._spare_programs[addr] += 1

    # ------------------------------------------------------------------
    # Erase
    # ------------------------------------------------------------------
    def erase_block(self, block: int) -> None:
        """Erase a block: every page returns to all bits 1 (one Terase)."""
        if not 0 <= block < self.spec.n_blocks:
            raise AddressError(f"block {block} outside chip of {self.spec.n_blocks}")
        if (
            self.spec.enforce_endurance
            and self._erase_counts[block] >= self.spec.erase_endurance
        ):
            raise WearOutError(
                f"block {block} exceeded endurance of {self.spec.erase_endurance}"
            )
        self._pre_mutate("erase_block")
        self.stats.record_erase(block)
        self._clock_us += self.spec.t_erase_us
        for addr in page_range_of_block(block, self.spec):
            self._data[addr] = None
            self._spare[addr] = None
            self._data_programs[addr] = 0
            self._spare_programs[addr] = 0
        self._erase_counts[block] += 1

    # ------------------------------------------------------------------
    # Cost-free inspection (tests, assertions, recovery verification)
    # ------------------------------------------------------------------
    def peek_data(self, addr: int) -> bytes:
        """Data area contents without charging I/O time (test/debug only)."""
        self._check_addr(addr)
        data = self._data[addr]
        return data if data is not None else b"\xff" * self.spec.page_data_size

    def peek_spare(self, addr: int) -> SpareArea:
        """Decoded spare area without charging I/O time (test/debug only)."""
        self._check_addr(addr)
        return self._decoded_spare(addr)

    def is_page_erased(self, addr: int) -> bool:
        self._check_addr(addr)
        return self._data[addr] is None and self._spare[addr] is None

    def is_block_erased(self, block: int) -> bool:
        return all(
            self.is_page_erased(addr)
            for addr in page_range_of_block(block, self.spec)
        )

    def erase_count(self, block: int) -> int:
        if not 0 <= block < self.spec.n_blocks:
            raise AddressError(f"block {block} outside chip of {self.spec.n_blocks}")
        return self._erase_counts[block]

    def iter_programmed_pages(self) -> Iterator[int]:
        """Flat addresses of all pages with a programmed spare area."""
        for addr, spare in enumerate(self._spare):
            if spare is not None:
                yield addr

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _decoded_spare(self, addr: int) -> SpareArea:
        raw = self._spare[addr]
        if raw is None:
            raw = erased_spare(self.spec.page_spare_size)
        return SpareArea.decode(raw)

    def _check_addr(self, addr: int) -> None:
        if not 0 <= addr < self.spec.n_pages:
            raise AddressError(
                f"page address {addr} outside chip of {self.spec.n_pages} pages"
            )
