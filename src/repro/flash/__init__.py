"""NAND flash emulator substrate (S1 in DESIGN.md).

Public surface:

* :class:`FlashSpec` — chip geometry and Table-1 latencies, with presets.
* :class:`FlashChip` — the emulator: read/program/erase with NAND
  semantics, phase-tagged cost accounting, wear counters, crash injection.
* :class:`SpareArea` / :class:`PageType` — the out-of-band metadata codec.
* :class:`FlashStats` / :class:`OpCounts` — simulated-time accounting.
"""

from .address import PageAddress, block_of, page_range_of_block, split_address
from .backend import (
    BackendError,
    DeviceBackend,
    FaultInjector,
    FileBackend,
    MemoryBackend,
)
from .cache import ReadCache
from .chip import ERASE_OPS, MUTATING_OPS, PROGRAM_OPS, CrashPoint, FlashChip
from .errors import (
    AddressError,
    ChecksumError,
    CrashError,
    EraseError,
    FlashError,
    ProgramError,
    SimulatedPowerLoss,
    SpareProgramError,
    WearOutError,
)
from .spare import HEADER_SIZE as SPARE_HEADER_SIZE
from .spare import (
    CHECKSUM_HEADER_SIZE,
    NO_CHECKSUM,
    NO_PID,
    NO_TS,
    PageType,
    SpareArea,
    data_checksum,
    erased_spare,
)
from .spec import (
    BENCH_SPEC,
    BENCH_SPEC_8K,
    SAMSUNG_K9L8G08U0M,
    TINY_SPEC,
    FlashSpec,
    spec_for_database,
)
from .stats import DEFAULT_PHASE, GC, READ_STEP, WRITE_STEP, FlashStats, OpCounts, StatsSnapshot

__all__ = [
    "AddressError",
    "BENCH_SPEC",
    "BENCH_SPEC_8K",
    "BackendError",
    "CHECKSUM_HEADER_SIZE",
    "ChecksumError",
    "CrashError",
    "CrashPoint",
    "DeviceBackend",
    "FaultInjector",
    "FileBackend",
    "MemoryBackend",
    "NO_CHECKSUM",
    "ReadCache",
    "DEFAULT_PHASE",
    "ERASE_OPS",
    "EraseError",
    "FlashChip",
    "FlashError",
    "FlashSpec",
    "FlashStats",
    "GC",
    "MUTATING_OPS",
    "NO_PID",
    "NO_TS",
    "OpCounts",
    "PROGRAM_OPS",
    "PageAddress",
    "PageType",
    "ProgramError",
    "READ_STEP",
    "SAMSUNG_K9L8G08U0M",
    "SPARE_HEADER_SIZE",
    "SimulatedPowerLoss",
    "SpareArea",
    "SpareProgramError",
    "StatsSnapshot",
    "TINY_SPEC",
    "WRITE_STEP",
    "WearOutError",
    "block_of",
    "data_checksum",
    "erased_spare",
    "page_range_of_block",
    "spec_for_database",
    "split_address",
]
