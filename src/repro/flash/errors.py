"""Exception hierarchy for the NAND flash emulator.

Every error raised by :mod:`repro.flash` derives from :class:`FlashError`,
so callers (drivers, the GC engine, tests) can catch emulator failures
without accidentally swallowing unrelated bugs.
"""

from __future__ import annotations


class FlashError(Exception):
    """Base class for all flash emulator errors."""


class AddressError(FlashError):
    """A block or page address is outside the chip geometry."""


class ProgramError(FlashError):
    """An illegal program (write) operation.

    NAND flash can only change bits from 1 to 0; programming a page whose
    current contents are incompatible with the requested data, or exceeding
    the per-page partial-program budget, raises this error.
    """


class EraseError(FlashError):
    """An illegal erase operation (e.g. erasing a bad block)."""


class WearOutError(FlashError):
    """A block exceeded its erase endurance limit.

    The emulator only raises this when ``FlashSpec.enforce_endurance`` is
    set; by default wear is merely counted, mirroring the paper, which
    reports erase counts (Experiment 6) but does not fail blocks.
    """


class CrashError(FlashError):
    """Raised by the crash-injection hook to simulate a power failure.

    The chip guarantees operation atomicity (page programming is atomic at
    the chip level, as the paper notes in Section 4.5), so a crash occurs
    *between* operations: the in-flight operation either fully completed or
    never happened.
    """


class SimulatedPowerLoss(CrashError):
    """A :class:`~repro.flash.chip.CrashPoint` fired.

    Subclasses :class:`CrashError` so existing crash-handling code is
    oblivious to whether the failure came from the legacy countdown hook
    or from an op-filtered crash point.
    """


class SpareProgramError(ProgramError):
    """The spare area of a page was programmed more times than allowed."""


class ChecksumError(FlashError):
    """A page's data area does not match the CRC32 in its spare area.

    Raised by the chip's read paths when a stored checksum disagrees
    with the data read back — the single-page failure class of Graefe &
    Kuno: bit rot, a misdirected write, or a torn program.  The page is
    still physically readable; ``fsck`` decides whether it can be
    repaired from a surviving copy or differential chain.
    """
