"""Spare (out-of-band) area codec.

Each flash page carries a small spare area next to its data area.  The
paper stores there the page *type* (base or differential), the *physical
page ID* of the logical page a base page holds, the *creation time stamp*
used by crash recovery to pick the most recent copy, and the *obsolete
bit* flipped when a page's contents are superseded (Section 4.2).

NAND constraints shape the encoding: a fresh spare area reads as all
``0xFF`` and programming can only clear bits, so the valid/obsolete flag
is a byte that starts at ``0xFF`` (valid) and is cleared to ``0x00``
(obsolete) by a second spare program — footnote 9 allows up to four spare
programs between erases.

Layout (16-byte header, remaining spare bytes left ``0xFF``)::

    [0]     type byte   (0xB5 base / 0xDF differential / 0x0D raw data)
    [1]     obsolete    (0xFF valid, 0x00 obsolete)
    [2:6]   pid         (u32 little-endian; 0xFFFFFFFF = none)
    [6:14]  timestamp   (u64 little-endian; all-ones = none)
    [14:16] reserved    (0xFF)
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass
from typing import Optional

HEADER_SIZE = 16
_HEADER = struct.Struct("<BBIQ2s")

NO_PID = 0xFFFFFFFF
NO_TS = 0xFFFFFFFFFFFFFFFF


class PageType(enum.IntEnum):
    """Role of a physical page, stored as the spare type byte.

    Values are chosen so that an erased (all-``0xFF``) spare area decodes
    as :attr:`ERASED` without special-casing.
    """

    ERASED = 0xFF
    BASE = 0xB5
    DIFFERENTIAL = 0xDF
    DATA = 0x0D
    LOG = 0x1C
    CHECKPOINT = 0xC5


_VALID_TYPES = {int(t) for t in PageType}


@dataclass(frozen=True)
class SpareArea:
    """Decoded spare-area header of one physical page."""

    type: PageType = PageType.ERASED
    obsolete: bool = False
    pid: Optional[int] = None
    timestamp: Optional[int] = None

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def encode(self, spare_size: int) -> bytes:
        """Serialize to ``spare_size`` bytes (header + 0xFF padding)."""
        if spare_size < HEADER_SIZE:
            raise ValueError(f"spare area of {spare_size} bytes cannot hold header")
        pid = NO_PID if self.pid is None else self.pid
        ts = NO_TS if self.timestamp is None else self.timestamp
        if not 0 <= pid <= NO_PID:
            raise ValueError(f"pid {pid} out of u32 range")
        if not 0 <= ts <= NO_TS:
            raise ValueError(f"timestamp {ts} out of u64 range")
        header = _HEADER.pack(
            int(self.type),
            0x00 if self.obsolete else 0xFF,
            pid,
            ts,
            b"\xff\xff",
        )
        return header + b"\xff" * (spare_size - HEADER_SIZE)

    @classmethod
    def decode(cls, raw: bytes) -> "SpareArea":
        """Parse a spare area; unknown type bytes decode as ERASED."""
        if len(raw) < HEADER_SIZE:
            raise ValueError(f"spare area of {len(raw)} bytes too small to decode")
        type_byte, valid_byte, pid, ts, _reserved = _HEADER.unpack_from(raw, 0)
        page_type = PageType(type_byte) if type_byte in _VALID_TYPES else PageType.ERASED
        return cls(
            type=page_type,
            obsolete=valid_byte != 0xFF,
            pid=None if pid == NO_PID else pid,
            timestamp=None if ts == NO_TS else ts,
        )

    # ------------------------------------------------------------------
    # Derived updates
    # ------------------------------------------------------------------
    def as_obsolete(self) -> "SpareArea":
        """Return a copy with the obsolete flag set.

        Only bit-clearing transitions are produced, so re-programming the
        spare area with the encoded result is always NAND-legal.
        """
        return SpareArea(
            type=self.type,
            obsolete=True,
            pid=self.pid,
            timestamp=self.timestamp,
        )

    @property
    def is_erased(self) -> bool:
        return self.type is PageType.ERASED

    @property
    def is_valid(self) -> bool:
        """True for a programmed page that has not been obsoleted."""
        return self.type is not PageType.ERASED and not self.obsolete


def erased_spare(spare_size: int) -> bytes:
    """The raw contents of an erased spare area (all bits 1)."""
    return b"\xff" * spare_size
