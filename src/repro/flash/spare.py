"""Spare (out-of-band) area codec.

Each flash page carries a small spare area next to its data area.  The
paper stores there the page *type* (base or differential), the *physical
page ID* of the logical page a base page holds, the *creation time stamp*
used by crash recovery to pick the most recent copy, and the *obsolete
bit* flipped when a page's contents are superseded (Section 4.2).

NAND constraints shape the encoding: a fresh spare area reads as all
``0xFF`` and programming can only clear bits, so the valid/obsolete flag
is a byte that starts at ``0xFF`` (valid) and is cleared to ``0x00``
(obsolete) by a second spare program — footnote 9 allows up to four spare
programs between erases.

Layout (16-byte header + optional 4-byte checksum, remaining spare bytes
left ``0xFF``)::

    [0]     type byte   (0xB5 base / 0xDF differential / 0x0D raw data)
    [1]     obsolete    (0xFF valid, 0x00 obsolete)
    [2:6]   pid         (u32 little-endian; 0xFFFFFFFF = none)
    [6:14]  timestamp   (u64 little-endian; all-ones = none)
    [14:16] reserved    (0xFF)
    [16:20] data CRC32  (u32 little-endian; 0xFFFFFFFF = none) — only
            when the spare area is at least 20 bytes

The checksum occupies bytes that earlier images left as ``0xFF``
padding, and the all-ones value means "no checksum" — exactly what an
erased or pre-checksum spare area reads as.  Decoding a pre-checksum
image therefore yields ``checksum=None`` and verification is skipped,
which is the whole backward-compatibility story: no image version bump,
old ``shard-NNNN.flash`` files keep opening and recovering (see
``docs/integrity.md``).
"""

from __future__ import annotations

import enum
import struct
import zlib
from dataclasses import dataclass, replace
from typing import Optional

HEADER_SIZE = 16
_HEADER = struct.Struct("<BBIQ2s")

#: Where the optional data-area CRC32 lives inside the spare area.
CHECKSUM_OFFSET = HEADER_SIZE
CHECKSUM_SIZE = 4
#: Minimum spare size that can carry a checksum next to the header.
CHECKSUM_HEADER_SIZE = HEADER_SIZE + CHECKSUM_SIZE
_CHECKSUM = struct.Struct("<I")
#: Header and checksum together, packed/unpacked in one struct call on
#: the hot path (spare areas of at least 20 bytes).
_HEADER_CRC = struct.Struct("<BBIQ2sI")

#: All-0xFF spare templates keyed by spare size; encode() copies one and
#: packs over it instead of concatenating header + checksum + padding.
_ERASED_CACHE: dict = {}

#: Memoized decode results keyed by raw spare contents (bounded; cleared
#: wholesale at the cap — entries are tiny and recreated on demand).
_DECODE_CACHE: dict = {}
_DECODE_CACHE_CAP = 16384

NO_PID = 0xFFFFFFFF
NO_TS = 0xFFFFFFFFFFFFFFFF
#: All-ones checksum slot means "no checksum recorded" (erased spare
#: bytes and pre-checksum images both read this way).
NO_CHECKSUM = 0xFFFFFFFF


def data_checksum(data: bytes) -> int:
    """CRC32 of a page's data area, avoiding the reserved all-ones value.

    A CRC that happens to equal :data:`NO_CHECKSUM` is mapped to 0 so it
    stays distinguishable from "no checksum recorded"; the mapping is
    deterministic, so verification compares like with like.
    """
    value = zlib.crc32(data) & 0xFFFFFFFF
    return 0 if value == NO_CHECKSUM else value


class PageType(enum.IntEnum):
    """Role of a physical page, stored as the spare type byte.

    Values are chosen so that an erased (all-``0xFF``) spare area decodes
    as :attr:`ERASED` without special-casing.  :attr:`CORRUPT` is a
    decode-side marker for unknown type bytes — no writer ever encodes
    it, so seeing it means the spare area was damaged after programming;
    recovery and fsck count and quarantine such pages instead of
    re-allocating over them.
    """

    ERASED = 0xFF
    BASE = 0xB5
    DIFFERENTIAL = 0xDF
    DATA = 0x0D
    LOG = 0x1C
    CHECKPOINT = 0xC5
    CORRUPT = 0x00


_VALID_TYPES = {int(t) for t in PageType} - {int(PageType.CORRUPT)}


@dataclass(frozen=True)
class SpareArea:
    """Decoded spare-area header of one physical page."""

    type: PageType = PageType.ERASED
    obsolete: bool = False
    pid: Optional[int] = None
    timestamp: Optional[int] = None
    checksum: Optional[int] = None

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def encode(self, spare_size: int) -> bytes:
        """Serialize to ``spare_size`` bytes (header + 0xFF padding).

        The checksum is emitted only when the spare area has room for it
        (``spare_size >= 20``); on smaller spares it is silently dropped,
        so chips with header-only spare areas keep working unchecked.
        """
        if spare_size < HEADER_SIZE:
            raise ValueError(f"spare area of {spare_size} bytes cannot hold header")
        pid = NO_PID if self.pid is None else self.pid
        ts = NO_TS if self.timestamp is None else self.timestamp
        if not 0 <= pid <= NO_PID:
            raise ValueError(f"pid {pid} out of u32 range")
        if not 0 <= ts <= NO_TS:
            raise ValueError(f"timestamp {ts} out of u64 range")
        buf = bytearray(erased_spare(spare_size))
        if spare_size >= CHECKSUM_HEADER_SIZE:
            crc = NO_CHECKSUM if self.checksum is None else self.checksum
            if not 0 <= crc <= NO_CHECKSUM:
                raise ValueError(f"checksum {crc} out of u32 range")
            _HEADER_CRC.pack_into(
                buf,
                0,
                int(self.type),
                0x00 if self.obsolete else 0xFF,
                pid,
                ts,
                b"\xff\xff",
                crc,
            )
        else:
            _HEADER.pack_into(
                buf,
                0,
                int(self.type),
                0x00 if self.obsolete else 0xFF,
                pid,
                ts,
                b"\xff\xff",
            )
        return bytes(buf)

    @classmethod
    def decode(cls, raw: bytes) -> "SpareArea":
        """Parse a spare area; unknown type bytes decode as CORRUPT.

        Decoding is deterministic and the result immutable, so results
        are memoized by raw contents — a page's spare is re-read far
        more often than it changes (every ``read_page`` decodes one).
        """
        key = raw if raw.__class__ is bytes else bytes(raw)
        cached = _DECODE_CACHE.get(key)
        if cached is not None:
            return cached
        if len(raw) < HEADER_SIZE:
            raise ValueError(f"spare area of {len(raw)} bytes too small to decode")
        checksum: Optional[int] = None
        if len(raw) >= CHECKSUM_HEADER_SIZE:
            type_byte, valid_byte, pid, ts, _reserved, crc = _HEADER_CRC.unpack_from(
                raw, 0
            )
            checksum = None if crc == NO_CHECKSUM else crc
        else:
            type_byte, valid_byte, pid, ts, _reserved = _HEADER.unpack_from(raw, 0)
        page_type = PageType(type_byte) if type_byte in _VALID_TYPES else PageType.CORRUPT
        decoded = cls(
            type=page_type,
            obsolete=valid_byte != 0xFF,
            pid=None if pid == NO_PID else pid,
            timestamp=None if ts == NO_TS else ts,
            checksum=checksum,
        )
        if len(_DECODE_CACHE) >= _DECODE_CACHE_CAP:
            _DECODE_CACHE.clear()
        _DECODE_CACHE[key] = decoded
        return decoded

    # ------------------------------------------------------------------
    # Derived updates
    # ------------------------------------------------------------------
    def as_obsolete(self) -> "SpareArea":
        """Return a copy with the obsolete flag set.

        Only bit-clearing transitions are produced (the checksum is
        preserved verbatim), so re-programming the spare area with the
        encoded result is always NAND-legal.
        """
        return replace(self, obsolete=True)

    def with_checksum(self, checksum: Optional[int]) -> "SpareArea":
        """Return a copy carrying ``checksum`` (``None`` clears it)."""
        return replace(self, checksum=checksum)

    @property
    def is_erased(self) -> bool:
        return self.type is PageType.ERASED

    @property
    def is_corrupt(self) -> bool:
        """True when the type byte decoded to no known page type."""
        return self.type is PageType.CORRUPT

    @property
    def is_valid(self) -> bool:
        """True for a programmed page that has not been obsoleted."""
        return (
            self.type is not PageType.ERASED
            and self.type is not PageType.CORRUPT
            and not self.obsolete
        )


def erased_spare(spare_size: int) -> bytes:
    """The raw contents of an erased spare area (all bits 1).

    Returns a cached immutable object — callers must not mutate it
    (copy into a ``bytearray`` first, as :meth:`SpareArea.encode` does).
    """
    cached = _ERASED_CACHE.get(spare_size)
    if cached is None:
        cached = _ERASED_CACHE[spare_size] = b"\xff" * spare_size
    return cached
