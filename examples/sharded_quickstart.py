#!/usr/bin/env python
"""Sharded quickstart: PDL across four chips in five minutes.

Builds a 4-chip array behind one driver, shows routing, the batched
group flush, aggregated stats/wear, the parallel-time win, and finishes
with a whole-array power loss + recovery.

Run:  python examples/sharded_quickstart.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import (  # noqa: E402
    FlashChip,
    FlashSpec,
    SimulatedPowerLoss,
    make_method,
    recover_all,
)
from repro.storage.db import Database  # noqa: E402

# --- four independent chips, one driver ------------------------------------
spec = FlashSpec(n_blocks=32)  # paper geometry, scaled down
chips = [FlashChip(spec) for _ in range(4)]
array = make_method("PDL (256B) x4", chips)  # hash-routed by default
PAGE = array.page_size

print("== loading 64 pages across 4 chips ==")
for pid in range(64):
    array.load_page(pid, bytes([pid]) * PAGE)
spread = [sum(1 for pid in range(64) if array.shard_index(pid) == i) for i in range(4)]
print(f"router spread 64 pages as {spread} (hash partitioning)")

# --- the storage engine is oblivious ---------------------------------------
print("\n== an unmodified Database over the array ==")
db = Database.resume(array, buffer_capacity=8, allocated_pages=64)
page = db.page(7)
page.write(100, b"0123456789")
db.flush()  # buffer pool write-back + batched group flush of every shard
print(f"db.flush() group-flushed all shards (group_flushes={array.group_flushes})")
assert db.page(7).data[100:110] == b"0123456789"

# --- updates hit shards independently; flushes are batched -----------------
print("\n== 200 small updates, then one group flush ==")
for i in range(200):
    pid = i % 64
    image = bytearray(array.read_page(pid))
    image[0:8] = i.to_bytes(8, "little")
    array.write_page(pid, bytes(image))
array.group_flush()
totals = array.stats.totals()
clocks = array.chip_clocks()
print(f"array totals: {totals.reads} reads, {totals.writes} writes")
print(f"serial (sum of chips) {sum(clocks)/1000:.1f} ms vs "
      f"parallel (busiest chip) {max(clocks)/1000:.1f} ms "
      f"-> x{sum(clocks)/max(clocks):.2f} overlap")
print(f"wear: {array.wear_report()}")

# --- power loss across the whole array, then recovery ----------------------
print("\n== power loss + sharded recovery (Figure 11 per chip) ==")
durable = {pid: array.read_page(pid) for pid in range(64)}
chips[2].crash_after(5)  # shard 2's device dies mid-traffic
try:
    for pid in range(64):
        image = bytearray(array.read_page(pid))
        image[0:4] = b"XXXX"
        array.write_page(pid, bytes(image))
except SimulatedPowerLoss:
    print("power failure! every shard's tables and buffers are gone…")

recovered, reports = recover_all(chips, max_differential_size=256)
print("per-shard scans adopted "
      + ", ".join(str(r.base_pages_adopted) for r in reports)
      + " base pages")
ok = sum(1 for pid in range(64) if len(recovered.read_page(pid)) == PAGE)
print(f"all {ok} pages readable; durable prefix intact: "
      f"{all(recovered.read_page(pid)[8:] == durable[pid][8:] for pid in range(64))}")
print("done.")
