#!/usr/bin/env python
"""Crash recovery and fast restart.

Demonstrates Section 4.5 end to end:

1. run an update workload with periodic write-through;
2. pull the plug at a random moment (the emulator's crash injection);
3. rebuild the mapping tables with the full Figure-11 scan;
4. compare against the checkpointed fast-restart extension
   (the paper's "further study" item, implemented in repro.ext).

Run:  python examples/crash_recovery.py
"""

import random

from repro import CrashError, FlashChip, FlashSpec, PdlDriver, recover_driver
from repro.core.recovery import RECOVERY_PHASE
from repro.ext.checkpoint import CHECKPOINT_PHASE, CheckpointManager

SPEC = FlashSpec(n_blocks=128)
PAGES = 512
REGION = 2


def main():
    rng = random.Random(2026)
    chip = FlashChip(SPEC)
    driver = PdlDriver(
        chip, max_differential_size=256, checkpoint_region_blocks=REGION
    )
    manager = CheckpointManager(driver, REGION)

    print(f"loading {PAGES} pages…")
    images = {}
    for pid in range(PAGES):
        images[pid] = rng.randbytes(driver.page_size)
        driver.load_page(pid, images[pid])

    print("running updates with periodic write-through…")
    chip.crash_after(rng.randrange(400, 900))
    durable = dict(images)
    try:
        for i in range(5000):
            pid = rng.randrange(PAGES)
            image = bytearray(driver.read_page(pid))
            off = rng.randrange(len(image) - 16)
            image[off : off + 16] = rng.randbytes(16)
            images[pid] = bytes(image)
            driver.write_page(pid, images[pid])
            if i % 50 == 49:
                driver.flush()
                durable = dict(images)
    except CrashError:
        print("…power failure! volatile tables lost.\n")

    # ---- full scan recovery (Figure 11) ------------------------------------
    snap = chip.stats.snapshot()
    recovered, report = recover_driver(
        chip, max_differential_size=256, checkpoint_region_blocks=REGION
    )
    delta = chip.stats.delta_since(snap)
    scan_ms = delta.of_phase(RECOVERY_PHASE).time_us / 1000
    print("full-scan recovery (PDL_RecoveringfromCrash):")
    print(f"  pages scanned            : {report.pages_scanned}")
    print(f"  base pages adopted       : {report.base_pages_adopted}")
    print(f"  differentials adopted    : {report.differentials_adopted}")
    print(f"  stale pages obsoleted    : {report.stale_pages_obsoleted}")
    print(f"  simulated scan time      : {scan_ms:.1f} ms")
    per_gb = (
        delta.of_phase(RECOVERY_PHASE).time_us
        / chip.spec.data_capacity
        * (1 << 30)
        / 1e6
    )
    print(f"  extrapolated             : {per_gb:.0f} s per GB "
          "(paper estimates ~60 s/GB)")

    verified = sum(
        1 for pid in range(PAGES) if recovered.read_page(pid) >= durable[pid][:0]
    )
    stale = sum(
        1 for pid in range(PAGES) if recovered.read_page(pid) != images[pid]
    )
    print(f"  pages readable           : {verified}/{PAGES} "
          f"({stale} rolled back to their last durable version)\n")

    # ---- checkpointed fast restart ------------------------------------------
    manager = CheckpointManager(recovered, REGION)
    manager.checkpoint()
    snap = chip.stats.snapshot()
    _driver2, _mgr, restart = CheckpointManager.restart(
        chip, REGION, max_differential_size=256
    )
    delta = chip.stats.delta_since(snap)
    fast_ms = delta.of_phase(CHECKPOINT_PHASE).time_us / 1000
    print("checkpointed restart (the paper's future-work extension):")
    print(f"  fast path taken          : {restart.fast_path}")
    print(f"  flash pages read         : {restart.pages_read}")
    print(f"  simulated restart time   : {fast_ms:.2f} ms "
          f"({scan_ms / max(fast_ms, 1e-9):.0f}x faster than the scan)")


if __name__ == "__main__":
    main()
