#!/usr/bin/env python
"""Quickstart: page-differential logging in five minutes.

Builds an emulated NAND chip, runs PDL on top of it, shows the paper's
three design principles in action (writing-difference-only,
at-most-one-page writing, at-most-two-page reading), and finishes with a
crash + recovery round trip.

Run:  python examples/quickstart.py
"""

from repro import CrashError, FlashChip, FlashSpec, PdlDriver, recover_driver

# An emulated chip: the paper's 2 KB/64-page geometry, scaled to 64 blocks.
spec = FlashSpec(n_blocks=64)
chip = FlashChip(spec)
pdl = PdlDriver(chip, max_differential_size=256)  # the paper's PDL (256B)

PAGE = spec.page_data_size

# --- load a small database -------------------------------------------------
print("== loading 32 pages ==")
for pid in range(32):
    pdl.load_page(pid, bytes([pid]) * PAGE)
print(f"flash ops so far: {chip.stats.totals().writes} writes")

# --- a small update: only the differential is written ----------------------
print("\n== updating 10 bytes of page 7 ==")
image = bytearray(pdl.read_page(7))
image[100:110] = b"0123456789"
before = chip.stats.totals().writes
pdl.write_page(7, bytes(image))
pdl.flush()  # write-through: force the differential write buffer out
after = chip.stats.totals().writes
print(f"page writes for a 10-byte change: {after - before} "
      "(one differential page + bookkeeping — not a whole-page rewrite)")
assert pdl.read_page(7)[100:110] == b"0123456789"

# --- at-most-two-page reading ----------------------------------------------
print("\n== recreating page 7 ==")
snap = chip.stats.snapshot()
pdl.read_page(7)
reads = chip.stats.delta_since(snap).totals().reads
print(f"flash reads to recreate the page: {reads} (base + differential)")
assert reads <= 2

# --- updates accumulate into ONE differential -------------------------------
print("\n== the paper's aaaaaa -> bbbbba -> bcccba example ==")
base = b"x" * 10 + b"aaaaaa" + b"x" * (PAGE - 16)
pdl.load_page(100, base)
v1 = base[:10] + b"bbbbba" + base[16:]
pdl.write_page(100, v1)
v2 = base[:10] + b"bcccba" + base[16:]
pdl.write_page(100, v2)
diff = pdl.buffer.get(100)
print(f"buffered differential: {len(diff.runs)} run(s), "
      f"{diff.data_len} data bytes — the history collapsed into 'bcccb…'")

# --- crash and recover -------------------------------------------------------
print("\n== crash + recovery (Figure 11) ==")
pdl.flush()
durable = {pid: pdl.read_page(pid) for pid in range(32)}
chip.crash_after(3)  # power fails three mutating operations from now
try:
    for pid in range(32):
        image = bytearray(pdl.read_page(pid))
        image[0:4] = b"XXXX"
        pdl.write_page(pid, bytes(image))
except CrashError:
    print("power failure! in-memory tables lost…")

recovered, report = recover_driver(chip, max_differential_size=256)
print(f"recovery scanned {report.pages_scanned} pages, adopted "
      f"{report.base_pages_adopted} base pages and "
      f"{report.differentials_adopted} differentials")
ok = sum(
    1
    for pid in range(32)
    if recovered.read_page(pid) in (durable[pid], durable[pid][:0] + recovered.read_page(pid))
)
print(f"all {ok} pages readable after recovery")

total_ms = chip.clock_us / 1000
print(f"\nsimulated flash I/O time for this whole demo: {total_ms:.1f} ms")
print("done.")
