#!/usr/bin/env python
"""Flash longevity: erase counts under different methods and GC policies.

The paper's Experiment 6 argues PDL extends flash lifetime because fewer
writes mean fewer erases.  This example measures erases per update for
each method (Figure 17) and then shows the wear-leveling ablation: how
GC victim policies spread erases across blocks (footnote 4's orthogonal
concern, implemented in repro.ext.wear_leveling).

Run:  python examples/wear_longevity.py
"""

import random

from repro.ext.wear_leveling import round_robin_policy, wear_aware_policy
from repro.flash.chip import FlashChip
from repro.flash.spec import spec_for_database
from repro.ftl.gc import greedy_policy
from repro.methods import make_method

DB_PAGES = 512
OPS = 6000


def run(label, policy=None, utilization=0.25):
    spec = spec_for_database(DB_PAGES, utilization=utilization)
    chip = FlashChip(spec)
    kwargs = {"victim_policy": policy} if policy is not None else {}
    driver = make_method(label, chip, **kwargs)
    rng = random.Random(7)
    images = {}
    for pid in range(DB_PAGES):
        images[pid] = rng.randbytes(driver.page_size)
        driver.load_page(pid, images[pid])
    from repro.ftl.base import ChangeRun

    for _ in range(OPS):
        pid = rng.randrange(DB_PAGES)
        image = bytearray(images[pid])
        off = rng.randrange(len(image) - 40)
        patch = rng.randbytes(40)
        image[off : off + 40] = patch
        images[pid] = bytes(image)
        driver.write_page(pid, images[pid], update_logs=[ChangeRun(off, patch)])
    counts = [chip.erase_count(b) for b in range(spec.n_blocks)]
    return (
        chip.stats.total_erases / OPS,
        max(counts),
        sum(1 for c in counts if c > 0),
        spec.n_blocks,
    )


def main():
    print(f"longevity measurement: {DB_PAGES}-page database, {OPS} update ops\n")
    print("— erases per update operation (Figure 17, N=1, ~2% changed) —")
    for label in ("OPU", "PDL (2KB)", "IPL (18KB)", "PDL (256B)", "IPL (64KB)"):
        erases_per_op, max_wear, touched, blocks = run(label)
        lifetime = "∞" if erases_per_op == 0 else f"{1 / erases_per_op:8.0f}"
        print(f"  {label:11s} {erases_per_op:8.4f} erases/op "
              f"(~{lifetime} updates per block-erase)")

    print("\n— GC victim policy ablation on PDL (256B) —")
    for name, policy in (
        ("greedy (paper)", greedy_policy),
        ("round-robin", round_robin_policy()),
        ("wear-aware", wear_aware_policy()),
    ):
        # higher space utilization so GC pressure appears within the run
        erases_per_op, max_wear, touched, blocks = run(
            "PDL (256B)", policy, utilization=0.5
        )
        print(f"  {name:15s} erases/op={erases_per_op:.4f}  "
              f"max wear on one block={max_wear}  "
              f"blocks touched={touched}/{blocks}")
    print("\nGreedy minimizes total erases; the wear-aware policy trades a "
          "few extra\nerases for a flatter wear distribution.")


if __name__ == "__main__":
    main()
