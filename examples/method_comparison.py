#!/usr/bin/env python
"""Compare the four page-update methods on the paper's synthetic workload.

Reproduces a miniature Experiment 1/4: all six configurations run the
same mixed read/update workload on identical chips; the table shows the
Figure-12-style cost split and the Figure-15-style crossover (OPU wins
read-only workloads, PDL wins everything else).

Run:  python examples/method_comparison.py
"""

from repro.methods import method_labels
from repro.workloads.runner import RunnerConfig, measure_mix, measure_updates

RUNNER = RunnerConfig(database_pages=512, measure_ops=400)


def show(title, rows, columns):
    print(f"\n== {title} ==")
    widths = [
        max(len(str(r[i])) for r in [columns] + rows) for i in range(len(columns))
    ]
    print("  ".join(str(c).ljust(w) for c, w in zip(columns, widths)))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))


def fmt(us):
    return f"{us:9.1f}"


def main():
    print("page-update method comparison "
          f"(database={RUNNER.database_pages} pages, 2KB pages, Table-1 timings)")

    # --- update-only workload: the Figure 12 split --------------------------
    rows = []
    for label in method_labels(include_ipu=True):
        m = measure_updates(label, RUNNER, pct_changed=2.0, n_updates_till_write=1)
        rows.append(
            [label, fmt(m.read_us), fmt(m.write_us), fmt(m.gc_us),
             fmt(m.overall_us), f"{m.erases_per_op:.4f}"]
        )
    show(
        "update operations (N=1, 2% changed) — simulated us per operation",
        rows,
        ["method", "read", "write", "gc", "overall", "erases/op"],
    )

    # --- the read-only vs update-heavy crossover (Figure 15) ----------------
    rows = []
    for label in ("PDL (256B)", "OPU"):
        read_only = measure_mix(label, RUNNER, pct_update=0.0)
        update_heavy = measure_mix(label, RUNNER, pct_update=100.0)
        rows.append(
            [label, fmt(read_only.overall_us), fmt(update_heavy.overall_us)]
        )
    show(
        "mix crossover — read-only vs update-only (us per op)",
        rows,
        ["method", "0% updates", "100% updates"],
    )
    print(
        "\nOPU wins pure reads on an updated database (PDL reads base +\n"
        "differential); PDL wins as soon as updates appear — the paper's\n"
        "0.5x ~ 3.4x range over the page-based method."
    )


if __name__ == "__main__":
    main()
