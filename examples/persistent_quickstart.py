"""Persistent quickstart: a database that survives the process.

Creates a sharded PDL database on disk, writes and flushes a few pages,
closes it, then reopens the directory the way a *new* process would —
recovering every shard from its flash image alone via the paper's
Figure-11 spare-area scan — and verifies the data came back bit-exact.

Run from the repository root::

    PYTHONPATH=src python examples/persistent_quickstart.py
"""

import random
import shutil
import tempfile

from repro import FlashSpec
from repro.storage.db import Database

SPEC = FlashSpec(n_blocks=32, pages_per_block=16, page_data_size=512, page_spare_size=16)

path = tempfile.mkdtemp(prefix="pdl-db-")
print(f"database directory: {path}")

# ----------------------------------------------------------------------
# Session 1: create, write, flush, close.
# ----------------------------------------------------------------------
rng = random.Random(2010)
images = {}
with Database.open(
    path, spec=SPEC, n_shards=2, max_differential_size=128, buffer_capacity=8
) as db:
    for _ in range(12):
        page = db.allocate_page()
        data = rng.randbytes(db.page_size)
        page.write(0, data)
        images[page.pid] = data
    db.flush()
    # Update a few pages so differentials (not just bases) are on flash.
    for pid in (1, 5, 9):
        page = db.page(pid)
        patch = rng.randbytes(24)
        page.write(100, patch)
        img = bytearray(images[pid])
        img[100:124] = patch
        images[pid] = bytes(img)
    db.flush()
    print(f"session 1: wrote and flushed {len(images)} pages on 2 shards")

# ----------------------------------------------------------------------
# Session 2: reopen from the images alone (Figure-11 recovery per shard).
# ----------------------------------------------------------------------
with Database.open(path) as db:
    assert db.allocated_pages == len(images)
    for pid, expected in images.items():
        assert db.page(pid).data == expected, f"page {pid} corrupted"
    print(
        f"session 2: recovered {db.allocated_pages} pages bit-exact "
        f"({db.driver.name})"
    )

shutil.rmtree(path)
print("ok")
