#!/usr/bin/env python
"""TPC-C on flash: the paper's Experiment 7 in miniature.

Loads a scaled TPC-C database (all nine tables, heap files + B+tree
indexes) on top of two different page-update drivers and runs the
standard transaction mix through a small DBMS buffer pool, reporting
simulated flash I/O per transaction — the series of Figure 18.

Run:  python examples/tpcc_demo.py
"""

from repro.workloads.tpcc import TpccScale, run_tpcc

SCALE = TpccScale(
    warehouses=1,
    districts_per_warehouse=4,
    customers_per_district=100,
    items=400,
    initial_orders_per_district=60,
)

METHODS = ("PDL (256B)", "PDL (2KB)", "OPU")
FRACTIONS = (0.01, 0.05, 0.1)


def main():
    print("scaled TPC-C: warehouses=1, districts=4, items=400")
    print("transaction mix: NewOrder 45%, Payment 43%, OrderStatus 4%, "
          "Delivery 4%, StockLevel 4%\n")
    header = ["buffer"] + list(METHODS)
    rows = []
    baseline = {}
    for fraction in FRACTIONS:
        row = [f"{fraction:5.1%}"]
        for label in METHODS:
            m = run_tpcc(
                label,
                SCALE,
                buffer_fraction=fraction,
                n_transactions=300,
                warmup_transactions=100,
            )
            row.append(f"{m.io_us_per_txn / 1000:8.2f} ms")
            if label == "OPU":
                baseline[fraction] = m.io_us_per_txn
            elif label == "PDL (256B)":
                baseline[(fraction, "pdl")] = m.io_us_per_txn
        rows.append(row)
    widths = [max(len(str(r[i])) for r in [header] + rows) for i in range(len(header))]
    print("I/O time per transaction:")
    print("  ".join(str(c).ljust(w) for c, w in zip(header, widths)))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    print()
    for fraction in FRACTIONS:
        speedup = baseline[fraction] / baseline[(fraction, "pdl")]
        print(f"buffer {fraction:5.1%}: PDL (256B) is {speedup:.2f}x faster than OPU")
    print("\n(the paper reports 1.2x ~ 6.1x across its buffer-size sweep)")


if __name__ == "__main__":
    main()
